//! The LBR estimator — paper §III.B-C.
//!
//! Each LBR stack of N entries yields N−1 streams `<Target[i-1],
//! Source[i]>`, each weighted `1/(N-1)`; every block covered by a stream
//! is credited. Bias detection identifies branches that occupy `entry[0]`
//! disproportionately (their terminating streams are structurally dropped)
//! and flags the blocks whose LBR evidence depends on them.

use hbbp_perf::PerfData;
use hbbp_program::{Bbec, BlockMap};
use hbbp_sim::EventSpec;
use std::collections::{HashMap, HashSet};

/// Tunables for LBR analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LbrOptions {
    /// A branch is *biased* when its `entry[0]` occupancy (fraction of
    /// snapshots) exceeds its fair share (its fraction of all stack
    /// entries) by at least this absolute margin. A uniformly hot branch
    /// scores 0; the paper's anomaly (a branch at entry\[0\] "up to 50% of
    /// the time") scores far above its fair share.
    pub entry0_excess_threshold: f64,
    /// Minimum stack appearances before a branch can be judged biased.
    pub min_branch_occurrences: u64,
    /// A block is *flagged* when at least this fraction of its LBR weight
    /// arrives through streams terminated by a biased branch.
    pub biased_weight_threshold: f64,
}

impl Default for LbrOptions {
    fn default() -> LbrOptions {
        LbrOptions {
            entry0_excess_threshold: 0.18,
            min_branch_occurrences: 16,
            biased_weight_threshold: 0.30,
        }
    }
}

/// Result of LBR estimation.
#[derive(Debug, Clone)]
pub struct LbrEstimate {
    /// Estimated per-block execution counts.
    pub bbec: Bbec,
    /// Blocks flagged with the paper's "bias" marker (block start addrs).
    pub biased_blocks: HashSet<u64>,
    /// Branch source addresses judged biased.
    pub biased_branches: HashSet<u64>,
    /// Per-block fraction of weight carried by biased-branch streams.
    pub biased_weight_fraction: HashMap<u64, f64>,
    /// Stacks processed.
    pub stacks: u64,
    /// Streams that failed to walk the block map (stale kernel text or
    /// garbage) — counted, partially attributed.
    pub derailed_streams: u64,
    /// Total streams examined.
    pub streams: u64,
    /// The sampling period used for extrapolation.
    pub period: u64,
}

impl LbrEstimate {
    /// Estimated executions of the block starting at `addr`.
    pub fn count(&self, addr: u64) -> f64 {
        self.bbec.get(addr)
    }

    /// Whether the block starting at `addr` carries the bias flag.
    pub fn is_biased(&self, addr: u64) -> bool {
        self.biased_blocks.contains(&addr)
    }

    /// Fraction of streams that derailed.
    pub fn derail_fraction(&self) -> f64 {
        if self.streams == 0 {
            0.0
        } else {
            self.derailed_streams as f64 / self.streams as f64
        }
    }
}

/// Build the LBR estimate from the stacks of `BR_INST_RETIRED:NEAR_TAKEN`
/// samples. Eventing IPs of those samples are **discarded** (paper §V.A).
pub fn estimate(data: &PerfData, map: &BlockMap, period: u64, options: &LbrOptions) -> LbrEstimate {
    let event = EventSpec::br_inst_retired_near_taken();

    // Pass 1: entry[0] occupancy statistics per branch source address,
    // conditioned on the branch being present in a stack at all (a branch
    // whose loop covers 10% of the run can still hog entry[0] of every
    // snapshot taken *during* that loop — the paper's anomaly, §III.C).
    let mut entry0_counts: HashMap<u64, u64> = HashMap::new();
    let mut appearances: HashMap<u64, u64> = HashMap::new();
    let mut stacks_containing: HashMap<u64, u64> = HashMap::new();
    let mut entries_alongside: HashMap<u64, u64> = HashMap::new();
    let mut stacks = 0u64;
    let mut seen_in_stack: Vec<u64> = Vec::new();
    for sample in data.samples_of(event) {
        if sample.lbr.is_empty() {
            continue;
        }
        stacks += 1;
        *entry0_counts.entry(sample.lbr[0].from).or_insert(0) += 1;
        seen_in_stack.clear();
        for e in &sample.lbr {
            *appearances.entry(e.from).or_insert(0) += 1;
            if !seen_in_stack.contains(&e.from) {
                seen_in_stack.push(e.from);
            }
        }
        for &from in &seen_in_stack {
            *stacks_containing.entry(from).or_insert(0) += 1;
            *entries_alongside.entry(from).or_insert(0) += sample.lbr.len() as u64;
        }
    }
    let biased_branches: HashSet<u64> = appearances
        .iter()
        .filter(|(addr, &total)| {
            if total < options.min_branch_occurrences {
                return false;
            }
            let present = stacks_containing.get(addr).copied().unwrap_or(0);
            let alongside = entries_alongside.get(addr).copied().unwrap_or(0);
            if present == 0 || alongside == 0 {
                return false;
            }
            // Occupancy and fair share, conditional on presence.
            let entry0_share =
                entry0_counts.get(addr).copied().unwrap_or(0) as f64 / present as f64;
            let fair_share = total as f64 / alongside as f64;
            entry0_share - fair_share >= options.entry0_excess_threshold
        })
        .map(|(&addr, _)| addr)
        .collect();

    // Pass 2: stream decomposition and attribution.
    let mut weight: HashMap<u64, f64> = HashMap::new();
    let mut biased_weight: HashMap<u64, f64> = HashMap::new();
    let mut derailed = 0u64;
    let mut streams = 0u64;
    for sample in data.samples_of(event) {
        let n = sample.lbr.len();
        if n < 2 {
            continue;
        }
        let w = 1.0 / (n - 1) as f64;
        for i in 1..n {
            streams += 1;
            let target = sample.lbr[i - 1].to;
            let source = sample.lbr[i].from;
            let walk = map.walk_stream(target, source);
            if walk.derailed {
                derailed += 1;
            }
            let source_biased = biased_branches.contains(&source);
            for bi in walk.blocks {
                let start = map.blocks()[bi].start;
                *weight.entry(start).or_insert(0.0) += w;
                if source_biased {
                    *biased_weight.entry(start).or_insert(0.0) += w;
                }
            }
        }
    }

    let mut bbec = Bbec::new();
    let mut biased_weight_fraction = HashMap::new();
    let mut biased_blocks = HashSet::new();
    for (&start, &w) in &weight {
        bbec.set(start, w * period as f64);
        let bw = biased_weight.get(&start).copied().unwrap_or(0.0);
        let frac = if w > 0.0 { bw / w } else { 0.0 };
        biased_weight_fraction.insert(start, frac);
        if frac >= options.biased_weight_threshold {
            biased_blocks.insert(start);
        }
    }
    LbrEstimate {
        bbec,
        biased_blocks,
        biased_branches,
        biased_weight_fraction,
        stacks,
        derailed_streams: derailed,
        streams,
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::{PerfRecord, PerfSample};
    use hbbp_program::{ImageView, Layout, ProgramBuilder, Ring, TextImage};
    use hbbp_sim::LbrEntry;

    /// Loop program: head (4+1 instrs, self-loop) then exit.
    struct Fixture {
        map: BlockMap,
        head_start: u64,
        head_term: u64,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        for i in 0..4 {
            b.push(b0, build::rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(5)));
        }
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.terminate_exit(b1, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        Fixture {
            head_start: layout.block_start(b0),
            head_term: layout.terminator_addr(b0),
            map,
        }
    }

    fn stack_sample(entries: Vec<LbrEntry>) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 1,
            event: EventSpec::br_inst_retired_near_taken(),
            ip: 0,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: entries,
        })
    }

    fn loop_entry(fx: &Fixture) -> LbrEntry {
        LbrEntry {
            from: fx.head_term,
            to: fx.head_start,
        }
    }

    #[test]
    fn stream_weights_normalize_per_stack() {
        let fx = fixture();
        // One 5-entry stack of pure loop iterations: 4 streams × 1/4 = 1.
        let mut data = PerfData::new();
        data.push(stack_sample(vec![loop_entry(&fx); 5]));
        let est = estimate(&data, &fx.map, 700, &LbrOptions::default());
        assert_eq!(est.stacks, 1);
        assert_eq!(est.streams, 4);
        assert_eq!(est.derailed_streams, 0);
        assert!((est.count(fx.head_start) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn bias_detection_flags_dominant_entry0_branch() {
        let fx = fixture();
        let mut data = PerfData::new();
        // 40 stacks; the loop branch is ALWAYS entry[0] (extreme bias).
        for _ in 0..40 {
            data.push(stack_sample(vec![loop_entry(&fx); 8]));
        }
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        // entry0 share = 40 appearances at entry0 / 320 total = 12.5%… the
        // same branch fills the whole stack, so share = 1/8 = 0.125 < 0.25:
        // NOT biased (a uniformly hot branch is not bias).
        assert!(
            est.biased_branches.is_empty(),
            "uniformly hot branch must not be flagged"
        );
    }

    #[test]
    fn bias_detection_catches_sticky_branch() {
        let fx = fixture();
        // Branch A sits at entry[0] in 30 of 32 stacks while accounting for
        // only 1/6 of all entries: entry0 share ≈ 0.94 vs fair share 0.16 →
        // excess ≈ 6× → biased.
        let a = loop_entry(&fx);
        let b = LbrEntry {
            from: fx.head_term + 1, // synthetic second branch (unmapped ok)
            to: fx.head_start,
        };
        let mut data = PerfData::new();
        for i in 0..32 {
            if i < 24 {
                // Quirk active: A captured at entry[0].
                data.push(stack_sample(vec![a, b, b, b, b, b]));
            } else {
                // Quirk inactive: A sits mid-stack, its stream usable.
                data.push(stack_sample(vec![b, b, b, a, b, b]));
            }
        }
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        assert!(est.biased_branches.contains(&a.from), "A must be biased");
        assert!(!est.biased_branches.contains(&b.from));
        // Blocks fed by A-terminated streams get the flag when dominant.
        // Here streams ending at A cover the loop head.
        assert!(est.biased_weight_fraction[&fx.head_start] > 0.0);
    }

    #[test]
    fn derailed_streams_counted() {
        let fx = fixture();
        let mut data = PerfData::new();
        // Backwards stream: target after source.
        data.push(stack_sample(vec![
            LbrEntry {
                from: fx.head_term,
                to: fx.head_term + 100,
            },
            LbrEntry {
                from: fx.head_start,
                to: fx.head_start,
            },
        ]));
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        assert_eq!(est.streams, 1);
        assert_eq!(est.derailed_streams, 1);
        assert!(est.derail_fraction() > 0.99);
    }

    #[test]
    fn single_entry_stacks_are_unusable() {
        let fx = fixture();
        let mut data = PerfData::new();
        data.push(stack_sample(vec![loop_entry(&fx)]));
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        assert_eq!(est.streams, 0);
        assert!(est.bbec.is_empty());
    }
}

//! The LBR estimator — paper §III.B-C.
//!
//! Each LBR stack of N entries yields N−1 streams `<Target[i-1],
//! Source[i]>`, each weighted `1/(N-1)`; every block covered by a stream
//! is credited. Bias detection identifies branches that occupy `entry[0]`
//! disproportionately (their terminating streams are structurally dropped)
//! and flags the blocks whose LBR evidence depends on them.
//!
//! The production path ([`estimate`] / the crate-internal `LbrAccum`) interns branch source
//! addresses into dense ids once and keeps every per-branch statistic in a
//! plain vector; per-stack dedup uses an epoch-stamped bitset (O(1) per
//! entry, replacing the seed's linear `contains` scan); per-block weights
//! are vectors indexed by [`BlockMap`] block index; stream walks reuse one
//! buffer through a locality [`hbbp_program::BlockCursor`], with small
//! direct-mapped branch and stream caches in front of the hot lookups. The
//! seed
//! address-keyed implementation survives as [`estimate_ref`] for
//! equivalence property tests and the perf trajectory benchmark.

use hbbp_perf::{PerfData, PerfSample};
use hbbp_program::{Bbec, BlockCursor, BlockMap, DenseBbec};
use hbbp_sim::{EventSpec, LbrEntry};
use std::collections::{HashMap, HashSet};

/// Tunables for LBR analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LbrOptions {
    /// A branch is *biased* when its `entry[0]` occupancy (fraction of
    /// snapshots) exceeds its fair share (its fraction of all stack
    /// entries) by at least this absolute margin. A uniformly hot branch
    /// scores 0; the paper's anomaly (a branch at entry\[0\] "up to 50% of
    /// the time") scores far above its fair share.
    pub entry0_excess_threshold: f64,
    /// Minimum stack appearances before a branch can be judged biased.
    pub min_branch_occurrences: u64,
    /// A block is *flagged* when at least this fraction of its LBR weight
    /// arrives through streams terminated by a biased branch.
    pub biased_weight_threshold: f64,
}

impl Default for LbrOptions {
    fn default() -> LbrOptions {
        LbrOptions {
            entry0_excess_threshold: 0.18,
            min_branch_occurrences: 16,
            biased_weight_threshold: 0.30,
        }
    }
}

/// Result of LBR estimation.
#[derive(Debug, Clone)]
pub struct LbrEstimate {
    /// Estimated per-block execution counts (address-keyed).
    pub bbec: Bbec,
    /// The same counts in the block-index coordinate system of the map
    /// the estimate was built over.
    pub dense: DenseBbec,
    /// Blocks flagged with the paper's "bias" marker (block start addrs).
    pub biased_blocks: HashSet<u64>,
    /// Per-block-index bias flags (same membership as `biased_blocks`).
    pub biased_idx: Vec<bool>,
    /// Branch source addresses judged biased.
    pub biased_branches: HashSet<u64>,
    /// Per-block fraction of weight carried by biased-branch streams.
    pub biased_weight_fraction: HashMap<u64, f64>,
    /// Stacks processed.
    pub stacks: u64,
    /// Streams that failed to walk the block map (stale kernel text or
    /// garbage) — counted, partially attributed.
    pub derailed_streams: u64,
    /// Total streams examined.
    pub streams: u64,
    /// The sampling period used for extrapolation.
    pub period: u64,
}

impl LbrEstimate {
    /// Estimated executions of the block starting at `addr`.
    pub fn count(&self, addr: u64) -> f64 {
        self.bbec.get(addr)
    }

    /// Estimated executions of the block at map index `bi`.
    pub fn count_idx(&self, bi: usize) -> f64 {
        self.dense.get(bi)
    }

    /// Whether the block starting at `addr` carries the bias flag.
    pub fn is_biased(&self, addr: u64) -> bool {
        self.biased_blocks.contains(&addr)
    }

    /// Whether the block at map index `bi` carries the bias flag.
    pub fn is_biased_idx(&self, bi: usize) -> bool {
        self.biased_idx.get(bi).copied().unwrap_or(false)
    }

    /// Fraction of streams that derailed.
    pub fn derail_fraction(&self) -> f64 {
        if self.streams == 0 {
            0.0
        } else {
            self.derailed_streams as f64 / self.streams as f64
        }
    }
}

/// Direct-mapped cache sizes for the LBR hot loops (power-of-two slots).
const BRANCH_CACHE_BITS: u32 = 10;
const STREAM_CACHE_BITS: u32 = 10;

/// The resumable heart of LBR estimation: pass-1 statistics (entry\[0\]
/// occupancy, appearances, per-stack presence) stream in through
/// [`LbrStats::observe_stack`]; pass 2 (stream decomposition and
/// attribution, which needs the finished bias verdicts) runs in
/// [`LbrStats::finish`] over whatever stack storage the caller kept.
///
/// Two callers wrap it: [`LbrAccum`] buffers stacks **by reference** (the
/// whole recording is in memory anyway — the fused batch path), and the
/// online analyzer buffers **owned** copies of just the stacks (the
/// bounded-memory streaming path, where the recording itself is never
/// materialized). Both feed `finish` the same stack sequence, so results
/// are bit-identical.
///
/// Branch identity exploits the block map: a well-formed LBR source is a
/// block **terminator** address, so its block index doubles as its branch
/// id — resolved through a locality cursor with no hashing at all. Only
/// sources that are not a terminator of any mapped block (garbage streams,
/// unmapped modules) fall back to a hash-interned overflow id space above
/// `map.len()`.
#[derive(Debug, Clone)]
pub(crate) struct LbrStats<'m> {
    map: &'m BlockMap,
    cursor: BlockCursor<'m>,
    options: LbrOptions,
    period: u64,
    /// Non-terminator branch source address → overflow ordinal (the branch
    /// id is `map.len() + ordinal`).
    overflow_ids: HashMap<u64, u32>,
    /// Overflow ordinal → address.
    overflow_addrs: Vec<u64>,
    /// Snapshots with this branch at `entry[0]`, by branch id.
    entry0: Vec<u64>,
    /// Total stack entries of this branch, by branch id.
    appearances: Vec<u64>,
    /// Stacks containing this branch at least once, by branch id.
    stacks_containing: Vec<u64>,
    /// Total entries of stacks containing this branch, by branch id.
    entries_alongside: Vec<u64>,
    /// Epoch stamps (stack ordinal of last sighting), by branch id — the
    /// O(1) per-stack dedup replacing the seed's `contains` scan.
    last_stack: Vec<u64>,
    /// Last interned `(addr, id)` — loop-dominated stacks repeat the same
    /// branch back to back, so this memo skips most lookups.
    memo: Option<(u64, u32)>,
    /// Direct-mapped `(addr, id)` cache behind the memo: stacks cycle
    /// through a handful of hot branches, so nearly every non-consecutive
    /// re-sighting hits here instead of re-resolving through the map. A
    /// slot with `id == u32::MAX` is empty.
    branch_cache: Vec<(u64, u32)>,
    stacks: u64,
}

impl<'m> LbrStats<'m> {
    pub(crate) fn new(map: &'m BlockMap, period: u64, options: LbrOptions) -> LbrStats<'m> {
        let n = map.len();
        LbrStats {
            map,
            cursor: map.cursor(),
            options,
            period,
            overflow_ids: HashMap::new(),
            overflow_addrs: Vec::new(),
            entry0: vec![0; n],
            appearances: vec![0; n],
            stacks_containing: vec![0; n],
            entries_alongside: vec![0; n],
            last_stack: vec![0; n],
            memo: None,
            branch_cache: vec![(0, u32::MAX); 1 << BRANCH_CACHE_BITS],
            stacks: 0,
        }
    }

    fn intern(&mut self, addr: u64) -> usize {
        if let Some((memo_addr, id)) = self.memo {
            if memo_addr == addr {
                return id as usize;
            }
        }
        let slot_idx =
            (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - BRANCH_CACHE_BITS)) as usize;
        let slot = self.branch_cache[slot_idx];
        if slot.0 == addr && slot.1 != u32::MAX {
            self.memo = Some(slot);
            return slot.1 as usize;
        }
        let id = match self.cursor.enclosing(addr) {
            Some(bi) if self.map.blocks()[bi].terminator_addr() == addr => bi,
            _ => {
                let base = self.map.len();
                match self.overflow_ids.entry(addr) {
                    std::collections::hash_map::Entry::Occupied(o) => base + *o.get() as usize,
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let ordinal = self.overflow_addrs.len();
                        v.insert(ordinal as u32);
                        self.overflow_addrs.push(addr);
                        self.entry0.push(0);
                        self.appearances.push(0);
                        self.stacks_containing.push(0);
                        self.entries_alongside.push(0);
                        self.last_stack.push(0);
                        base + ordinal
                    }
                }
            }
        };
        self.memo = Some((addr, id as u32));
        self.branch_cache[slot_idx] = (addr, id as u32);
        id
    }

    /// Address of a branch id (inverse of [`LbrAccum::intern`]).
    fn id_addr(&self, id: usize) -> u64 {
        match id.checked_sub(self.map.len()) {
            Some(ordinal) => self.overflow_addrs[ordinal],
            None => self.map.blocks()[id].terminator_addr(),
        }
    }

    /// Ingest one stack's pass-1 statistics (the sample's eventing IP is
    /// **discarded**, paper §V.A). Returns `true` when the stack is usable
    /// for pass-2 stream attribution (≥ 2 entries) — the caller must then
    /// keep the stack and replay it to [`LbrStats::finish`].
    pub(crate) fn observe_stack(&mut self, entries: &[LbrEntry]) -> bool {
        if entries.is_empty() {
            return false;
        }
        self.stacks += 1;
        // Stack ordinal doubles as the dedup epoch (0 = never seen).
        let epoch = self.stacks;
        let e0 = self.intern(entries[0].from);
        self.entry0[e0] += 1;
        let stack_len = entries.len() as u64;
        // A loop iterating under the snapshot fills the stack with runs of
        // the same branch; all per-branch statistics are integers, so one
        // batched update per run is exact.
        let mut i = 0;
        while i < entries.len() {
            let from = entries[i].from;
            let mut j = i + 1;
            while j < entries.len() && entries[j].from == from {
                j += 1;
            }
            let id = self.intern(from);
            self.appearances[id] += (j - i) as u64;
            if self.last_stack[id] != epoch {
                self.last_stack[id] = epoch;
                self.stacks_containing[id] += 1;
                self.entries_alongside[id] += stack_len;
            }
            i = j;
        }
        entries.len() >= 2
    }

    /// Pass 2: judge branch bias from the pass-1 statistics, then walk and
    /// attribute the streams of `stacks` — which must be exactly the
    /// stacks [`LbrStats::observe_stack`] returned `true` for, in
    /// observation order.
    pub(crate) fn finish<'a, I>(mut self, stacks: I) -> LbrEstimate
    where
        I: IntoIterator<Item = &'a [LbrEntry]>,
    {
        self.take_estimate(stacks)
    }

    /// [`finish`](LbrStats::finish) without consuming: produce the
    /// estimate, then reset every pass-1 statistic in place so the
    /// accumulator (and all its vectors, caches and overflow tables) is
    /// ready for the next window without reallocating.
    pub(crate) fn take_estimate<'a, I>(&mut self, stacks: I) -> LbrEstimate
    where
        I: IntoIterator<Item = &'a [LbrEntry]>,
    {
        let map = self.map;
        // Bias judgement per branch (same rule as the seed: occupancy and
        // fair share conditional on presence, §III.C).
        let mut branch_biased = vec![false; self.entry0.len()];
        let mut biased_branches = HashSet::new();
        for (id, biased) in branch_biased.iter_mut().enumerate() {
            let total = self.appearances[id];
            // Never-seen branch ids (blocks without sampled terminators)
            // have total = present = 0 and fall through both guards.
            if total < self.options.min_branch_occurrences {
                continue;
            }
            let present = self.stacks_containing[id];
            let alongside = self.entries_alongside[id];
            if present == 0 || alongside == 0 {
                continue;
            }
            let entry0_share = self.entry0[id] as f64 / present as f64;
            let fair_share = total as f64 / alongside as f64;
            if entry0_share - fair_share >= self.options.entry0_excess_threshold {
                *biased = true;
                biased_branches.insert(self.id_addr(id));
            }
        }

        // Pass 2: stream decomposition and attribution over the buffered
        // stacks, all in block-index coordinates.
        let mut weight = vec![0.0f64; map.len()];
        let mut biased_weight = vec![0.0f64; map.len()];
        let mut derailed = 0u64;
        let mut streams = 0u64;
        let mut cursor = map.cursor();
        // Direct-mapped stream cache: a recording's streams are drawn from
        // the few hot loops' branch pairs over and over, so most walks can
        // be replayed from a tiny cache keyed by `<target, source>`. A
        // cached walk is a pure function of the pair, so replaying it is
        // exact.
        struct StreamSlot {
            filled: bool,
            target: u64,
            source: u64,
            derailed: bool,
            blocks: Vec<usize>,
        }
        let mut stream_cache: Vec<StreamSlot> = (0..1usize << STREAM_CACHE_BITS)
            .map(|_| StreamSlot {
                filled: false,
                target: 0,
                source: 0,
                derailed: false,
                blocks: Vec::new(),
            })
            .collect();
        let slot_of = |target: u64, source: u64| -> usize {
            let mixed = (target ^ source.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (mixed >> (64 - STREAM_CACHE_BITS)) as usize
        };
        // When nothing is biased (the common case), skip the per-stream
        // source lookup entirely; otherwise memoize the last verdict —
        // consecutive streams usually share their terminating branch.
        let any_biased = branch_biased.iter().any(|&b| b);
        let mut bias_memo: Option<(u64, bool)> = None;
        for stack in stacks {
            let n = stack.len();
            let w = 1.0 / (n - 1) as f64;
            // A loop iterating under a snapshot fills the stack with
            // identical entries, so its streams come in **runs** of the
            // same `<target, source>` pair: walk and classify once per
            // run, then replay the per-block `+= w` the run's length
            // times. Each weight slot sees exactly the per-stream add
            // sequence the seed performs, so results stay bit-identical.
            let mut i = 1;
            while i < n {
                let target = stack[i - 1].to;
                let source = stack[i].from;
                let mut j = i + 1;
                while j < n && stack[j - 1].to == target && stack[j].from == source {
                    j += 1;
                }
                let run = (j - i) as u64;
                streams += run;
                let slot = &mut stream_cache[slot_of(target, source)];
                if !slot.filled || slot.target != target || slot.source != source {
                    slot.derailed = cursor.walk_stream_into(target, source, &mut slot.blocks);
                    slot.filled = true;
                    slot.target = target;
                    slot.source = source;
                }
                if slot.derailed {
                    derailed += run;
                }
                let source_biased = any_biased
                    && match bias_memo {
                        Some((memo_source, verdict)) if memo_source == source => verdict,
                        _ => {
                            let id = match cursor.enclosing(source) {
                                Some(bi) if map.blocks()[bi].terminator_addr() == source => {
                                    Some(bi)
                                }
                                _ => self
                                    .overflow_ids
                                    .get(&source)
                                    .map(|&o| map.len() + o as usize),
                            };
                            let verdict = id.is_some_and(|id| branch_biased[id]);
                            bias_memo = Some((source, verdict));
                            verdict
                        }
                    };
                for &bi in &slot.blocks {
                    let mut acc = weight[bi];
                    for _ in 0..run {
                        acc += w;
                    }
                    weight[bi] = acc;
                    if source_biased {
                        let mut acc = biased_weight[bi];
                        for _ in 0..run {
                            acc += w;
                        }
                        biased_weight[bi] = acc;
                    }
                }
                i = j;
            }
        }

        let mut dense = DenseBbec::for_map(map);
        let mut bbec = Bbec::new();
        let mut biased_weight_fraction = HashMap::new();
        let mut biased_blocks = HashSet::new();
        let mut biased_idx = vec![false; map.len()];
        for (bi, &w) in weight.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let value = w * self.period as f64;
            dense.set(bi, value);
            let start = map.blocks()[bi].start;
            // Built directly (not via `to_bbec`) so a credited block keeps
            // its entry even when a degenerate period of 0 zeroes the
            // value — exactly what the seed implementation produces.
            bbec.set(start, value);
            let frac = biased_weight[bi] / w;
            biased_weight_fraction.insert(start, frac);
            if frac >= self.options.biased_weight_threshold {
                biased_blocks.insert(start);
                biased_idx[bi] = true;
            }
        }
        let estimate = LbrEstimate {
            bbec,
            dense,
            biased_blocks,
            biased_idx,
            biased_branches,
            biased_weight_fraction,
            stacks: self.stacks,
            derailed_streams: derailed,
            streams,
            period: self.period,
        };
        self.reset();
        estimate
    }

    /// Clear every pass-1 statistic, keeping allocations: the stat vectors
    /// shrink back to map length (dropping overflow tails), the caches
    /// empty, and the epoch counter restarts.
    fn reset(&mut self) {
        let n = self.map.len();
        self.overflow_ids.clear();
        self.overflow_addrs.clear();
        for v in [
            &mut self.entry0,
            &mut self.appearances,
            &mut self.stacks_containing,
            &mut self.entries_alongside,
            &mut self.last_stack,
        ] {
            v.truncate(n);
            v.fill(0);
        }
        self.memo = None;
        self.branch_cache.fill((0, u32::MAX));
        self.stacks = 0;
    }
}

/// Streaming LBR accumulator over an in-memory recording: feed it
/// `BR_INST_RETIRED:NEAR_TAKEN` samples (event filtering is the caller's
/// job), then [`finish`] into an [`LbrEstimate`]. Usable stacks are
/// buffered **by reference** into the recording — zero copies; the
/// bounded-memory owned-buffer variant lives in
/// [`crate::online::OnlineAnalyzer`].
///
/// [`finish`]: LbrAccum::finish
#[derive(Debug, Clone)]
pub(crate) struct LbrAccum<'m, 'd> {
    stats: LbrStats<'m>,
    buffered: Vec<&'d [LbrEntry]>,
}

impl<'m, 'd> LbrAccum<'m, 'd> {
    pub(crate) fn new(map: &'m BlockMap, period: u64, options: LbrOptions) -> LbrAccum<'m, 'd> {
        LbrAccum {
            stats: LbrStats::new(map, period, options),
            buffered: Vec::new(),
        }
    }

    /// Ingest one sample's LBR stack (its eventing IP is **discarded**,
    /// paper §V.A).
    pub(crate) fn observe(&mut self, sample: &'d PerfSample) {
        if self.stats.observe_stack(&sample.lbr) {
            self.buffered.push(&sample.lbr);
        }
    }

    pub(crate) fn finish(self) -> LbrEstimate {
        self.stats.finish(self.buffered)
    }
}

/// Build the LBR estimate from the stacks of `BR_INST_RETIRED:NEAR_TAKEN`
/// samples. Eventing IPs of those samples are **discarded** (paper §V.A).
pub fn estimate(data: &PerfData, map: &BlockMap, period: u64, options: &LbrOptions) -> LbrEstimate {
    let mut acc = LbrAccum::new(map, period, options.clone());
    for sample in data.samples_of(EventSpec::br_inst_retired_near_taken()) {
        acc.observe(sample);
    }
    acc.finish()
}

/// The seed address-keyed implementation of [`estimate`], kept as the
/// reference for equivalence property tests and the `BENCH_pipeline.json`
/// perf trajectory. Produces bit-identical results. Its per-stack dedup is
/// the original O(stack²) scan and its walks go through the seed's
/// whole-map binary searches ([`BlockMap::walk_stream_seed`]) — it
/// measures the true pre-index baseline; do not use it on hot paths.
pub fn estimate_ref(
    data: &PerfData,
    map: &BlockMap,
    period: u64,
    options: &LbrOptions,
) -> LbrEstimate {
    let event = EventSpec::br_inst_retired_near_taken();

    // Pass 1: entry[0] occupancy statistics per branch source address,
    // conditioned on the branch being present in a stack at all (a branch
    // whose loop covers 10% of the run can still hog entry[0] of every
    // snapshot taken *during* that loop — the paper's anomaly, §III.C).
    let mut entry0_counts: HashMap<u64, u64> = HashMap::new();
    let mut appearances: HashMap<u64, u64> = HashMap::new();
    let mut stacks_containing: HashMap<u64, u64> = HashMap::new();
    let mut entries_alongside: HashMap<u64, u64> = HashMap::new();
    let mut stacks = 0u64;
    let mut seen_in_stack: Vec<u64> = Vec::new();
    for sample in data.samples_of(event) {
        if sample.lbr.is_empty() {
            continue;
        }
        stacks += 1;
        *entry0_counts.entry(sample.lbr[0].from).or_insert(0) += 1;
        seen_in_stack.clear();
        for e in &sample.lbr {
            *appearances.entry(e.from).or_insert(0) += 1;
            if !seen_in_stack.contains(&e.from) {
                seen_in_stack.push(e.from);
            }
        }
        for &from in &seen_in_stack {
            *stacks_containing.entry(from).or_insert(0) += 1;
            *entries_alongside.entry(from).or_insert(0) += sample.lbr.len() as u64;
        }
    }
    let biased_branches: HashSet<u64> = appearances
        .iter()
        .filter(|(addr, &total)| {
            if total < options.min_branch_occurrences {
                return false;
            }
            let present = stacks_containing.get(addr).copied().unwrap_or(0);
            let alongside = entries_alongside.get(addr).copied().unwrap_or(0);
            if present == 0 || alongside == 0 {
                return false;
            }
            // Occupancy and fair share, conditional on presence.
            let entry0_share =
                entry0_counts.get(addr).copied().unwrap_or(0) as f64 / present as f64;
            let fair_share = total as f64 / alongside as f64;
            entry0_share - fair_share >= options.entry0_excess_threshold
        })
        .map(|(&addr, _)| addr)
        .collect();

    // Pass 2: stream decomposition and attribution.
    let mut weight: HashMap<u64, f64> = HashMap::new();
    let mut biased_weight: HashMap<u64, f64> = HashMap::new();
    let mut derailed = 0u64;
    let mut streams = 0u64;
    for sample in data.samples_of(event) {
        let n = sample.lbr.len();
        if n < 2 {
            continue;
        }
        let w = 1.0 / (n - 1) as f64;
        for i in 1..n {
            streams += 1;
            let target = sample.lbr[i - 1].to;
            let source = sample.lbr[i].from;
            let walk = map.walk_stream_seed(target, source);
            if walk.derailed {
                derailed += 1;
            }
            let source_biased = biased_branches.contains(&source);
            for bi in walk.blocks {
                let start = map.blocks()[bi].start;
                *weight.entry(start).or_insert(0.0) += w;
                if source_biased {
                    *biased_weight.entry(start).or_insert(0.0) += w;
                }
            }
        }
    }

    let mut bbec = Bbec::new();
    let mut biased_weight_fraction = HashMap::new();
    let mut biased_blocks = HashSet::new();
    for (&start, &w) in &weight {
        bbec.set(start, w * period as f64);
        let bw = biased_weight.get(&start).copied().unwrap_or(0.0);
        let frac = if w > 0.0 { bw / w } else { 0.0 };
        biased_weight_fraction.insert(start, frac);
        if frac >= options.biased_weight_threshold {
            biased_blocks.insert(start);
        }
    }
    let dense = DenseBbec::from_bbec(&bbec, map);
    let biased_idx = (0..map.len())
        .map(|bi| biased_blocks.contains(&map.blocks()[bi].start))
        .collect();
    LbrEstimate {
        bbec,
        dense,
        biased_blocks,
        biased_idx,
        biased_branches,
        biased_weight_fraction,
        stacks,
        derailed_streams: derailed,
        streams,
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::{PerfRecord, PerfSample};
    use hbbp_program::{ImageView, Layout, ProgramBuilder, Ring, TextImage};
    use hbbp_sim::LbrEntry;

    /// Loop program: head (4+1 instrs, self-loop) then exit.
    struct Fixture {
        map: BlockMap,
        head_start: u64,
        head_term: u64,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        for i in 0..4 {
            b.push(b0, build::rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(5)));
        }
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.terminate_exit(b1, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        Fixture {
            head_start: layout.block_start(b0),
            head_term: layout.terminator_addr(b0),
            map,
        }
    }

    fn stack_sample(entries: Vec<LbrEntry>) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 1,
            event: EventSpec::br_inst_retired_near_taken(),
            ip: 0,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: entries,
        })
    }

    fn loop_entry(fx: &Fixture) -> LbrEntry {
        LbrEntry {
            from: fx.head_term,
            to: fx.head_start,
        }
    }

    #[test]
    fn stream_weights_normalize_per_stack() {
        let fx = fixture();
        // One 5-entry stack of pure loop iterations: 4 streams × 1/4 = 1.
        let mut data = PerfData::new();
        data.push(stack_sample(vec![loop_entry(&fx); 5]));
        let est = estimate(&data, &fx.map, 700, &LbrOptions::default());
        assert_eq!(est.stacks, 1);
        assert_eq!(est.streams, 4);
        assert_eq!(est.derailed_streams, 0);
        assert!((est.count(fx.head_start) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn bias_detection_flags_dominant_entry0_branch() {
        let fx = fixture();
        let mut data = PerfData::new();
        // 40 stacks; the loop branch is ALWAYS entry[0] (extreme bias).
        for _ in 0..40 {
            data.push(stack_sample(vec![loop_entry(&fx); 8]));
        }
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        // entry0 share = 40 appearances at entry0 / 320 total = 12.5%… the
        // same branch fills the whole stack, so share = 1/8 = 0.125 < 0.25:
        // NOT biased (a uniformly hot branch is not bias).
        assert!(
            est.biased_branches.is_empty(),
            "uniformly hot branch must not be flagged"
        );
    }

    #[test]
    fn bias_detection_catches_sticky_branch() {
        let fx = fixture();
        // Branch A sits at entry[0] in 30 of 32 stacks while accounting for
        // only 1/6 of all entries: entry0 share ≈ 0.94 vs fair share 0.16 →
        // excess ≈ 6× → biased.
        let a = loop_entry(&fx);
        let b = LbrEntry {
            from: fx.head_term + 1, // synthetic second branch (unmapped ok)
            to: fx.head_start,
        };
        let mut data = PerfData::new();
        for i in 0..32 {
            if i < 24 {
                // Quirk active: A captured at entry[0].
                data.push(stack_sample(vec![a, b, b, b, b, b]));
            } else {
                // Quirk inactive: A sits mid-stack, its stream usable.
                data.push(stack_sample(vec![b, b, b, a, b, b]));
            }
        }
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        assert!(est.biased_branches.contains(&a.from), "A must be biased");
        assert!(!est.biased_branches.contains(&b.from));
        // Blocks fed by A-terminated streams get the flag when dominant.
        // Here streams ending at A cover the loop head.
        assert!(est.biased_weight_fraction[&fx.head_start] > 0.0);
    }

    #[test]
    fn derailed_streams_counted() {
        let fx = fixture();
        let mut data = PerfData::new();
        // Backwards stream: target after source.
        data.push(stack_sample(vec![
            LbrEntry {
                from: fx.head_term,
                to: fx.head_term + 100,
            },
            LbrEntry {
                from: fx.head_start,
                to: fx.head_start,
            },
        ]));
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        assert_eq!(est.streams, 1);
        assert_eq!(est.derailed_streams, 1);
        assert!(est.derail_fraction() > 0.99);
    }

    #[test]
    fn single_entry_stacks_are_unusable() {
        let fx = fixture();
        let mut data = PerfData::new();
        data.push(stack_sample(vec![loop_entry(&fx)]));
        let est = estimate(&data, &fx.map, 100, &LbrOptions::default());
        assert_eq!(est.streams, 0);
        assert!(est.bbec.is_empty());
    }

    #[test]
    fn index_and_reference_paths_agree() {
        let fx = fixture();
        let a = loop_entry(&fx);
        let b = LbrEntry {
            from: fx.head_term + 1,
            to: fx.head_start,
        };
        let mut data = PerfData::new();
        for i in 0..40 {
            let stack = if i % 3 == 0 {
                vec![a, b, b, b, a, b]
            } else if i % 3 == 1 {
                vec![a; 6]
            } else {
                vec![b, a, a, b]
            };
            data.push(stack_sample(stack));
        }
        let fast = estimate(&data, &fx.map, 250, &LbrOptions::default());
        let seed = estimate_ref(&data, &fx.map, 250, &LbrOptions::default());
        assert_eq!(fast.bbec, seed.bbec);
        assert_eq!(fast.dense, seed.dense);
        assert_eq!(fast.biased_blocks, seed.biased_blocks);
        assert_eq!(fast.biased_idx, seed.biased_idx);
        assert_eq!(fast.biased_branches, seed.biased_branches);
        assert_eq!(fast.biased_weight_fraction, seed.biased_weight_fraction);
        assert_eq!(fast.stacks, seed.stacks);
        assert_eq!(fast.streams, seed.streams);
        assert_eq!(fast.derailed_streams, seed.derailed_streams);
    }
}

//! Per-block features for the HBBP decision rule — paper §IV.B.
//!
//! "As features we use code parameters that could have an influence on the
//! underlying performance monitoring subsystem, including, for instance,
//! basic block lengths, instruction-related information, execution counts
//! and bias flags, weighted by the number of executions of the basic
//! block."

use crate::{EbsEstimate, LbrEstimate};
use hbbp_isa::Instruction;
use hbbp_program::StaticBlock;

/// Feature names, in the order produced by [`BlockFeatures::to_vec`].
pub const FEATURE_NAMES: [&str; 6] = [
    "block_len",
    "bias",
    "exec_estimate_log10",
    "has_long_latency",
    "mean_latency",
    "backward_branch",
];

/// Features of one basic block, as available *at analysis time* (no ground
/// truth involved).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockFeatures {
    /// Instruction count of the block — the paper's dominant feature.
    pub block_len: f64,
    /// LBR bias flag (§III.C).
    pub bias: bool,
    /// log10 of the measured execution estimate (max of EBS/LBR).
    pub exec_estimate_log10: f64,
    /// Whether any instruction is long-latency.
    pub has_long_latency: bool,
    /// Mean nominal latency of the block's instructions.
    pub mean_latency: f64,
    /// Whether the terminator is a backward conditional branch (loop-ish).
    pub backward_branch: bool,
}

impl BlockFeatures {
    /// Extract features for `block` using address-keyed estimate lookups.
    ///
    /// Prefer [`BlockFeatures::extract_indexed`] on hot paths where the
    /// block's map index is already at hand — it produces the same values
    /// without touching the sparse tables.
    pub fn extract(block: &StaticBlock, ebs: &EbsEstimate, lbr: &LbrEstimate) -> BlockFeatures {
        let exec = ebs.count(block.start).max(lbr.count(block.start));
        Self::from_parts(block, exec, lbr.is_biased(block.start))
    }

    /// Extract features for the block at map index `bi` (`block` must be
    /// `map.blocks()[bi]`), using dense index-addressed estimate lookups.
    pub fn extract_indexed(
        block: &StaticBlock,
        bi: usize,
        ebs: &EbsEstimate,
        lbr: &LbrEstimate,
    ) -> BlockFeatures {
        let exec = ebs.count_idx(bi).max(lbr.count_idx(bi));
        Self::from_parts(block, exec, lbr.is_biased_idx(bi))
    }

    fn from_parts(block: &StaticBlock, exec: f64, bias: bool) -> BlockFeatures {
        let mean_latency = if block.instrs.is_empty() {
            0.0
        } else {
            block.instrs.iter().map(|i| i.latency() as f64).sum::<f64>() / block.instrs.len() as f64
        };
        BlockFeatures {
            block_len: block.len() as f64,
            bias,
            exec_estimate_log10: if exec > 0.0 { exec.log10() } else { 0.0 },
            has_long_latency: block.instrs.iter().any(Instruction::is_long_latency),
            mean_latency,
            backward_branch: matches!(
                (block.term_kind, block.term_target),
                (Some(hbbp_isa::BranchKind::Conditional), Some(t)) if t < block.start
            ) || matches!(
                (block.term_kind, block.term_target),
                (Some(hbbp_isa::BranchKind::Conditional), Some(t))
                    if t >= block.start && t < block.end()
            ),
        }
    }

    /// Feature vector in [`FEATURE_NAMES`] order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.block_len,
            self.bias as u8 as f64,
            self.exec_estimate_log10,
            self.has_long_latency as u8 as f64,
            self.mean_latency,
            self.backward_branch as u8 as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ebs, lbr, LbrOptions};
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::PerfData;
    use hbbp_program::{BlockMap, ImageView, Layout, ProgramBuilder, Ring, TextImage};

    fn fixture() -> (BlockMap, u64) {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        for i in 0..3 {
            b.push(b0, build::rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(5)));
        }
        b.push(b0, build::r(Mnemonic::Idiv, Reg::gpr(6)));
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.terminate_exit(b1, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        (map, layout.block_start(b0))
    }

    #[test]
    fn extraction_captures_static_properties() {
        let (map, b0) = fixture();
        let empty = PerfData::new();
        let e = ebs::estimate(&empty, &map, 100);
        let l = lbr::estimate(&empty, &map, 50, &LbrOptions::default());
        let bi = map.at_start(b0).unwrap();
        let feats = BlockFeatures::extract(&map.blocks()[bi], &e, &l);
        let feats_idx = BlockFeatures::extract_indexed(&map.blocks()[bi], bi, &e, &l);
        assert_eq!(feats, feats_idx, "address and index paths must agree");
        assert_eq!(feats.block_len, 5.0);
        assert!(feats.has_long_latency, "IDIV present");
        assert!(feats.backward_branch, "self-loop Jnz");
        assert!(!feats.bias);
        assert_eq!(feats.exec_estimate_log10, 0.0);
        assert!(feats.mean_latency > 1.0);
        let v = feats.to_vec();
        assert_eq!(v.len(), FEATURE_NAMES.len());
        assert_eq!(v[0], 5.0);
        assert_eq!(v[1], 0.0);
    }
}

//! The analyzer — paper §V.B.
//!
//! "Analysis software … produces dynamic instruction mixes from raw sample
//! input by processing additional static information. … Dynamic (sample)
//! information is mapped onto static basic block maps. Using the adjusted
//! sample data, we produce a histogram of BBECs according to HBBP."
//!
//! [`Analyzer`] owns the block map (the static side), turns any BBEC into
//! mnemonic mixes and pivot tables, and performs the kernel-text patch
//! step of §III.C before the map is built (see [`Analyzer::from_images`]).

use crate::{ebs, hybrid, lbr, EbsEstimate, HbbpEstimate, HybridRule, LbrEstimate, LbrOptions};
use crate::{Field, PivotTable, SamplingPeriods};
use hbbp_perf::PerfData;
use hbbp_program::{
    Bbec, BlockMap, DiscoverError, MnemonicMix, Ring, StaticBlock, SymbolInfo, TextImage,
};
use hbbp_sim::EventSpec;
use std::collections::HashMap;

/// The analysis engine for one workload's images.
#[derive(Debug, Clone)]
pub struct Analyzer {
    map: BlockMap,
    module_names: HashMap<hbbp_program::ModuleId, String>,
    lbr_options: LbrOptions,
}

/// Full per-method analysis of one recording: the three estimates and
/// their mixes.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// EBS-only estimate.
    pub ebs: EbsEstimate,
    /// LBR-only estimate.
    pub lbr: LbrEstimate,
    /// Combined HBBP estimate.
    pub hbbp: HbbpEstimate,
}

impl Analyzer {
    /// Build an analyzer from text images (performing static block
    /// discovery).
    ///
    /// Pass the **patched** kernel images (see [`TextImage::patch_from`])
    /// to avoid the stale-text distortion of §III.C.
    ///
    /// # Errors
    ///
    /// Returns [`DiscoverError`] if an image fails to decode.
    pub fn from_images(
        images: &[TextImage],
        symbols: &[SymbolInfo],
    ) -> Result<Analyzer, DiscoverError> {
        let map = BlockMap::discover(images, symbols)?;
        let module_names = images
            .iter()
            .map(|i| (i.module(), i.name().to_owned()))
            .collect();
        Ok(Analyzer {
            map,
            module_names,
            lbr_options: LbrOptions::default(),
        })
    }

    /// Build an analyzer over an existing block map.
    pub fn from_map(
        map: BlockMap,
        module_names: HashMap<hbbp_program::ModuleId, String>,
    ) -> Analyzer {
        Analyzer {
            map,
            module_names,
            lbr_options: LbrOptions::default(),
        }
    }

    /// Override LBR analysis options.
    pub fn with_lbr_options(mut self, options: LbrOptions) -> Analyzer {
        self.lbr_options = options;
        self
    }

    /// The static block map.
    pub fn map(&self) -> &BlockMap {
        &self.map
    }

    /// The LBR analysis options in effect.
    pub fn lbr_options(&self) -> &LbrOptions {
        &self.lbr_options
    }

    /// Run all three estimators over a recording.
    ///
    /// Thin wrapper over [`Analyzer::analyze_fused`]; results are
    /// identical.
    pub fn analyze(
        &self,
        data: &PerfData,
        periods: SamplingPeriods,
        rule: &HybridRule,
    ) -> Analysis {
        self.analyze_fused(data, periods, rule)
    }

    /// Run all three estimators in a **single pass** over the recording:
    /// each sample record is dispatched once to the EBS or LBR accumulator
    /// by event, instead of the seed's two independent full scans with
    /// per-event filtering. Estimation itself runs in block-index
    /// coordinates (dense tables + locality cursors).
    ///
    /// Produces results bit-identical to [`Analyzer::analyze_ref`] (the
    /// per-event sample order is exactly what the per-event scans see).
    pub fn analyze_fused(
        &self,
        data: &PerfData,
        periods: SamplingPeriods,
        rule: &HybridRule,
    ) -> Analysis {
        let ebs_event = EventSpec::inst_retired_prec_dist();
        let lbr_event = EventSpec::br_inst_retired_near_taken();
        let mut ebs_acc = ebs::EbsAccum::new(&self.map, periods.ebs);
        let mut lbr_acc = lbr::LbrAccum::new(&self.map, periods.lbr, self.lbr_options.clone());
        for sample in data.samples() {
            if sample.event == ebs_event {
                ebs_acc.observe(sample);
            } else if sample.event == lbr_event {
                lbr_acc.observe(sample);
            }
        }
        let ebs = ebs_acc.finish();
        let lbr = lbr_acc.finish();
        let hbbp = hybrid::combine(&self.map, &ebs, &lbr, rule);
        Analysis { ebs, lbr, hbbp }
    }

    /// The seed analysis pipeline: two independent full scans of the
    /// recording through the address-keyed reference estimators. Kept for
    /// equivalence property tests and the `BENCH_pipeline.json` perf
    /// trajectory; produces results identical to [`Analyzer::analyze`].
    pub fn analyze_ref(
        &self,
        data: &PerfData,
        periods: SamplingPeriods,
        rule: &HybridRule,
    ) -> Analysis {
        let ebs = ebs::estimate_ref(data, &self.map, periods.ebs);
        let lbr = lbr::estimate_ref(data, &self.map, periods.lbr, &self.lbr_options);
        let hbbp = hybrid::combine_ref(&self.map, &ebs, &lbr, rule);
        Analysis { ebs, lbr, hbbp }
    }

    /// Derive the instruction mix from a BBEC ("If we know how many times a
    /// basic block is executed, we also know exactly how many times each
    /// instruction within it is executed", §I).
    pub fn mix(&self, bbec: &Bbec) -> MnemonicMix {
        self.mix_where(bbec, |_| true)
    }

    /// Instruction mix restricted to blocks matching a predicate (e.g. one
    /// ring or one module — how Table 7 splits user vs kernel).
    pub fn mix_where(
        &self,
        bbec: &Bbec,
        mut predicate: impl FnMut(&StaticBlock) -> bool,
    ) -> MnemonicMix {
        let mut mix = MnemonicMix::new();
        for block in self.map.blocks() {
            let count = bbec.get(block.start);
            if count <= 0.0 || !predicate(block) {
                continue;
            }
            mix.add_block(&block.instrs, count);
        }
        mix
    }

    /// Instruction mix of one ring.
    pub fn mix_for_ring(&self, bbec: &Bbec, ring: Ring) -> MnemonicMix {
        self.mix_where(bbec, |b| b.ring == ring)
    }

    /// Build a pivot table over the weighted instruction population.
    pub fn pivot(&self, bbec: &Bbec, fields: &[Field]) -> PivotTable {
        let entries = self.map.blocks().iter().flat_map(|block| {
            let count = bbec.get(block.start);
            let name = self
                .module_names
                .get(&block.module)
                .map(String::as_str)
                .unwrap_or("?");
            block
                .instrs
                .iter()
                .filter(move |_| count > 0.0)
                .map(move |instr| (block, instr, name, count))
        });
        PivotTable::build(fields, entries)
    }

    /// Total instructions implied by a BBEC.
    pub fn total_instructions(&self, bbec: &Bbec) -> f64 {
        self.map
            .blocks()
            .iter()
            .map(|b| bbec.get(b.start) * b.len() as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg, Taxonomy};
    use hbbp_program::{ImageView, Layout, ProgramBuilder};

    fn fixture() -> (Analyzer, u64, u64) {
        let mut b = ProgramBuilder::new("f");
        let um = b.module("user.bin", Ring::User);
        let km = b.module("mod.ko", Ring::Kernel);
        let fu = b.function(um, "user_fn");
        let fk = b.function(km, "kernel_fn");

        let k0 = b.block(fk);
        b.push(k0, build::rr(Mnemonic::Imul, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(k0);

        let u0 = b.block(fu);
        let u1 = b.block(fu);
        b.push(u0, build::rr(Mnemonic::Addps, Reg::xmm(0), Reg::xmm(1)));
        b.push(u0, build::rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_call(u0, fk, u1);
        b.terminate_exit(u1, build::bare(Mnemonic::Syscall));

        let mut p = b.build(fu).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let images: Vec<TextImage> = p
            .modules()
            .iter()
            .map(|m| TextImage::encode(&p, &layout, m.id(), ImageView::Live))
            .collect();
        let analyzer = Analyzer::from_images(&images, layout.symbols()).unwrap();
        (analyzer, layout.block_start(u0), layout.block_start(k0))
    }

    #[test]
    fn mix_expands_blocks() {
        let (analyzer, u0, k0) = fixture();
        let mut bbec = Bbec::new();
        bbec.set(u0, 10.0);
        bbec.set(k0, 4.0);
        let mix = analyzer.mix(&bbec);
        assert_eq!(mix.get(Mnemonic::Addps), 10.0);
        assert_eq!(mix.get(Mnemonic::CallNear), 10.0);
        assert_eq!(mix.get(Mnemonic::Imul), 4.0);
        assert_eq!(analyzer.total_instructions(&bbec), 10.0 * 3.0 + 4.0 * 2.0);
    }

    #[test]
    fn ring_filtering_matches_table7_usage() {
        let (analyzer, u0, k0) = fixture();
        let mut bbec = Bbec::new();
        bbec.set(u0, 10.0);
        bbec.set(k0, 4.0);
        let user = analyzer.mix_for_ring(&bbec, Ring::User);
        let kernel = analyzer.mix_for_ring(&bbec, Ring::Kernel);
        assert_eq!(user.get(Mnemonic::Imul), 0.0);
        assert_eq!(kernel.get(Mnemonic::Imul), 4.0);
        assert_eq!(user.get(Mnemonic::Addps), 10.0);
        assert_eq!(kernel.get(Mnemonic::Addps), 0.0);
    }

    #[test]
    fn pivot_by_module_and_extension() {
        let (analyzer, u0, k0) = fixture();
        let mut bbec = Bbec::new();
        bbec.set(u0, 10.0);
        bbec.set(k0, 4.0);
        let table = analyzer.pivot(&bbec, &[Field::Module, Field::Extension]);
        assert_eq!(table.get(&["user.bin", "SSE"]), 10.0);
        assert_eq!(table.get(&["mod.ko", "BASE"]), 8.0); // IMUL + RET
        assert!(table.total() > 0.0);
        let text = table.to_string();
        assert!(text.contains("user.bin"));
        let csv = table.to_csv();
        assert!(csv.starts_with("module,ext,count"));
    }

    #[test]
    fn pivot_with_taxonomy() {
        let (analyzer, u0, _) = fixture();
        let mut bbec = Bbec::new();
        bbec.set(u0, 5.0);
        let table = analyzer.pivot(&bbec, &[Field::Taxon(Taxonomy::ext_packing())]);
        assert_eq!(table.get(&["SSE/PACKED"]), 5.0);
    }

    #[test]
    fn pivot_by_symbol() {
        let (analyzer, u0, k0) = fixture();
        let mut bbec = Bbec::new();
        bbec.set(u0, 2.0);
        bbec.set(k0, 3.0);
        let table = analyzer.pivot(&bbec, &[Field::Symbol]);
        assert_eq!(table.get(&["user_fn"]), 6.0);
        assert_eq!(table.get(&["kernel_fn"]), 6.0);
    }
}

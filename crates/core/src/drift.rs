//! Mix drift — comparing two instruction mixes over time.
//!
//! Where [`crate::MixComparison`] measures *accuracy* (a measured mix
//! against ground truth), [`MixDrift`] measures *change*: how an
//! instruction mix moved between two points in time — two store epochs,
//! or a live stream against a stored baseline. The daemon's `DRIFT` op
//! and `hbbp watch` are both built on it, and both compute the exact
//! same rows from the exact same canonical folds, so an online answer is
//! bit-identical to an offline recompute.
//!
//! ```
//! use hbbp_core::MixDrift;
//! use hbbp_isa::Mnemonic;
//! use hbbp_program::MnemonicMix;
//!
//! let mut baseline = MnemonicMix::new();
//! baseline.add(Mnemonic::Add, 100.0);
//! baseline.add(Mnemonic::Mov, 100.0);
//! let mut current = MnemonicMix::new();
//! current.add(Mnemonic::Add, 200.0);
//! current.add(Mnemonic::Mov, 50.0);
//!
//! let drift = MixDrift::between(&baseline, &current);
//! assert_eq!(drift.top_movers(1)[0].mnemonic, Mnemonic::Add);
//! assert!((drift.divergence() - 0.3).abs() < 1e-12);
//! ```

use hbbp_isa::Mnemonic;
use hbbp_program::MnemonicMix;
use std::fmt;

/// Total-variation distance between two mixes as distributions, in
/// `[0, 1]` — the one mix-comparison metric shared by every consumer:
/// [`MixDrift::divergence`], the `hbbp watch` threshold, and the
/// `hbbp synth` calibrator's convergence test all measure exactly this.
///
/// Delegates to [`MnemonicMix::tv_distance`]; `0.0` when either mix is
/// empty (no evidence of divergence). [`MixDrift::divergence`] is pinned
/// bit-identical to this function, so a drift verdict and a calibration
/// distance computed from the same folds can never disagree.
pub fn mix_distance(baseline: &MnemonicMix, current: &MnemonicMix) -> f64 {
    baseline.tv_distance(current)
}

/// Movement of one mnemonic between a baseline and a current mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixDriftRow {
    /// The mnemonic.
    pub mnemonic: Mnemonic,
    /// Execution count in the baseline mix.
    pub baseline: f64,
    /// Execution count in the current mix.
    pub current: f64,
    /// `current − baseline`, in execution counts (signed).
    pub delta: f64,
}

/// A full per-mnemonic drift of a current mix against a baseline.
#[derive(Debug, Clone)]
pub struct MixDrift {
    rows: Vec<MixDriftRow>,
    baseline_total: f64,
    current_total: f64,
}

impl MixDrift {
    /// Compute the drift of `current` against `baseline` over the union
    /// of their mnemonics.
    pub fn between(baseline: &MnemonicMix, current: &MnemonicMix) -> MixDrift {
        let mut rows = Vec::new();
        for m in baseline.union_mnemonics(current) {
            let b = baseline.get(m);
            let c = current.get(m);
            rows.push(MixDriftRow {
                mnemonic: m,
                baseline: b,
                current: c,
                delta: c - b,
            });
        }
        MixDrift {
            baseline_total: baseline.total(),
            current_total: current.total(),
            rows,
        }
    }

    /// All rows (union of mnemonics, opcode order).
    pub fn rows(&self) -> &[MixDriftRow] {
        &self.rows
    }

    /// Total execution count of the baseline mix.
    pub fn baseline_total(&self) -> f64 {
        self.baseline_total
    }

    /// Total execution count of the current mix.
    pub fn current_total(&self) -> f64 {
        self.current_total
    }

    /// The `k` largest movers by `|delta|`, descending; ties broken by
    /// ascending opcode so the ordering (and anything pinned on it, like
    /// a `DRIFT` wire reply) is deterministic.
    pub fn top_movers(&self, k: usize) -> Vec<MixDriftRow> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            b.delta
                .abs()
                .partial_cmp(&a.delta.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.mnemonic.opcode().cmp(&b.mnemonic.opcode()))
        });
        rows.truncate(k);
        rows
    }

    /// Total-variation distance between the two mixes as distributions:
    /// `0.5 · Σ_M |current_share(M) − baseline_share(M)|`, in `[0, 1]`.
    ///
    /// `0.0` means identical shares; `1.0` means disjoint mnemonic sets.
    /// When either mix is empty the distance is defined as `0.0` — an
    /// empty window has no evidence of divergence.
    ///
    /// Bit-identical to [`mix_distance`] of the two mixes the drift was
    /// built from: the sum runs over the same union of mnemonics in the
    /// same opcode order with the same share arithmetic.
    pub fn divergence(&self) -> f64 {
        if self.baseline_total <= 0.0 || self.current_total <= 0.0 {
            return 0.0;
        }
        0.5 * self
            .rows
            .iter()
            .map(|r| (r.current / self.current_total - r.baseline / self.baseline_total).abs())
            .sum::<f64>()
    }
}

impl fmt::Display for MixDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>14} {:>14} {:>14}",
            "mnemonic", "baseline", "current", "delta"
        )?;
        for row in self.top_movers(usize::MAX) {
            writeln!(
                f,
                "{:<12} {:>14.1} {:>14.1} {:>+14.1}",
                format!("{:?}", row.mnemonic),
                row.baseline,
                row.current,
                row.delta
            )?;
        }
        write!(f, "divergence {:.4}", self.divergence())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(entries: &[(Mnemonic, f64)]) -> MnemonicMix {
        let mut m = MnemonicMix::new();
        for &(mn, c) in entries {
            m.add(mn, c);
        }
        m
    }

    #[test]
    fn rows_cover_the_union() {
        let drift = MixDrift::between(
            &mix(&[(Mnemonic::Add, 10.0)]),
            &mix(&[(Mnemonic::Mov, 4.0)]),
        );
        assert_eq!(drift.rows().len(), 2);
        let add = drift
            .rows()
            .iter()
            .find(|r| r.mnemonic == Mnemonic::Add)
            .unwrap();
        assert_eq!((add.baseline, add.current, add.delta), (10.0, 0.0, -10.0));
        let mov = drift
            .rows()
            .iter()
            .find(|r| r.mnemonic == Mnemonic::Mov)
            .unwrap();
        assert_eq!((mov.baseline, mov.current, mov.delta), (0.0, 4.0, 4.0));
    }

    #[test]
    fn top_movers_sort_by_abs_delta_then_opcode() {
        let drift = MixDrift::between(
            &mix(&[(Mnemonic::Add, 10.0), (Mnemonic::Mov, 10.0)]),
            &mix(&[
                (Mnemonic::Add, 4.0),
                (Mnemonic::Mov, 16.0),
                (Mnemonic::Jmp, 1.0),
            ]),
        );
        let movers = drift.top_movers(3);
        // |−6| == |+6|: the tie breaks toward the lower opcode, and the
        // +1 mover comes last.
        assert_eq!(movers.len(), 3);
        assert_eq!(movers[2].mnemonic, Mnemonic::Jmp);
        assert!(movers[0].mnemonic.opcode() < movers[1].mnemonic.opcode());
        assert_eq!(drift.top_movers(1).len(), 1);
    }

    #[test]
    fn divergence_is_total_variation_over_shares() {
        // Identical shares at different scales: no divergence.
        let same = MixDrift::between(
            &mix(&[(Mnemonic::Add, 1.0), (Mnemonic::Mov, 3.0)]),
            &mix(&[(Mnemonic::Add, 10.0), (Mnemonic::Mov, 30.0)]),
        );
        assert_eq!(same.divergence(), 0.0);
        // Disjoint mnemonic sets: maximal divergence.
        let disjoint =
            MixDrift::between(&mix(&[(Mnemonic::Add, 5.0)]), &mix(&[(Mnemonic::Mov, 5.0)]));
        assert!((disjoint.divergence() - 1.0).abs() < 1e-12);
        // An empty side is defined as zero evidence.
        assert_eq!(
            MixDrift::between(&MnemonicMix::new(), &mix(&[(Mnemonic::Add, 1.0)])).divergence(),
            0.0
        );
    }

    #[test]
    fn divergence_is_bit_identical_to_mix_distance() {
        let baseline = mix(&[(Mnemonic::Add, 10.0), (Mnemonic::Mov, 3.0)]);
        let current = mix(&[
            (Mnemonic::Add, 4.0),
            (Mnemonic::Mov, 16.0),
            (Mnemonic::Jmp, 1.0),
        ]);
        let drift = MixDrift::between(&baseline, &current);
        assert_eq!(
            drift.divergence().to_bits(),
            mix_distance(&baseline, &current).to_bits()
        );
        // And the metric is exactly symmetric.
        assert_eq!(
            mix_distance(&baseline, &current).to_bits(),
            mix_distance(&current, &baseline).to_bits()
        );
    }

    #[test]
    fn display_renders_movers_and_divergence() {
        let drift = MixDrift::between(
            &mix(&[(Mnemonic::Add, 10.0)]),
            &mix(&[(Mnemonic::Add, 12.0)]),
        );
        let text = format!("{drift}");
        assert!(text.contains("Add"));
        assert!(text.contains("divergence"));
    }
}

//! The EBS estimator — paper §III.A.
//!
//! "We enhance classic EBS by applying every IP sample to all instructions
//! of the enclosing basic block. … To obtain proper instruction counts, we
//! must then divide the number of samples recorded for a basic block by
//! the instruction length of that block."
//!
//! The production path ([`estimate`] / the crate-internal `EbsAccum`) works in the block
//! **index** coordinate system: raw sample tallies live in a plain vector
//! indexed by [`BlockMap`] block index and IPs resolve through a
//! [`hbbp_program::BlockCursor`], so the hot loop performs no hashing.
//! [`estimate_ref`] preserves the original address-keyed implementation as
//! the equivalence/benchmark reference.

use hbbp_perf::{PerfData, PerfSample};
use hbbp_program::{Bbec, BlockCursor, BlockMap, DenseBbec};
use hbbp_sim::EventSpec;
use std::collections::HashMap;

/// Result of EBS estimation.
#[derive(Debug, Clone)]
pub struct EbsEstimate {
    /// Estimated per-block execution counts (address-keyed).
    pub bbec: Bbec,
    /// The same counts in the block-index coordinate system of the map
    /// the estimate was built over.
    pub dense: DenseBbec,
    /// Raw IP-sample counts per block (keyed by block start).
    pub samples_per_block: HashMap<u64, u64>,
    /// Samples whose IP fell inside the block map.
    pub samples_used: u64,
    /// Samples outside any known block (stub regions, unmapped code).
    pub samples_unmapped: u64,
    /// The sampling period used for extrapolation.
    pub period: u64,
}

impl EbsEstimate {
    /// Estimated executions of the block starting at `addr`.
    pub fn count(&self, addr: u64) -> f64 {
        self.bbec.get(addr)
    }

    /// Estimated executions of the block at map index `bi`.
    pub fn count_idx(&self, bi: usize) -> f64 {
        self.dense.get(bi)
    }
}

/// Streaming EBS accumulator: feed it `INST_RETIRED:PREC_DIST` samples one
/// at a time (event filtering is the caller's job), then [`finish`] into
/// an [`EbsEstimate`]. This is the building block the fused single-pass
/// analyzer dispatches into.
///
/// [`finish`]: EbsAccum::finish
#[derive(Debug, Clone)]
pub(crate) struct EbsAccum<'m> {
    map: &'m BlockMap,
    cursor: BlockCursor<'m>,
    samples: Vec<u64>,
    used: u64,
    unmapped: u64,
    period: u64,
}

impl<'m> EbsAccum<'m> {
    pub(crate) fn new(map: &'m BlockMap, period: u64) -> EbsAccum<'m> {
        EbsAccum {
            map,
            cursor: map.cursor(),
            samples: vec![0; map.len()],
            used: 0,
            unmapped: 0,
            period,
        }
    }

    /// Attribute one sample's eventing IP. Attached LBR stacks are
    /// **discarded** (paper §V.A).
    pub(crate) fn observe(&mut self, sample: &PerfSample) {
        self.observe_ip(sample.ip);
    }

    /// [`observe`](EbsAccum::observe) without the sample wrapper — the
    /// zero-copy view path has no `PerfSample` to hand over.
    pub(crate) fn observe_ip(&mut self, ip: u64) {
        match self.cursor.enclosing(ip) {
            Some(bi) => {
                self.samples[bi] += 1;
                self.used += 1;
            }
            None => self.unmapped += 1,
        }
    }

    pub(crate) fn finish(mut self) -> EbsEstimate {
        self.take_estimate()
    }

    /// Produce the estimate of everything observed so far and reset the
    /// accumulator in place, keeping its allocations — the windowed online
    /// analyzer calls this once per window instead of building a fresh
    /// accumulator (and tally vector) each time.
    pub(crate) fn take_estimate(&mut self) -> EbsEstimate {
        let mut dense = DenseBbec::for_map(self.map);
        let mut bbec = Bbec::new();
        let mut samples_per_block = HashMap::new();
        for (bi, &n) in self.samples.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let block = &self.map.blocks()[bi];
            samples_per_block.insert(block.start, n);
            let len = block.len().max(1) as f64;
            let value = n as f64 * self.period as f64 / len;
            dense.set(bi, value);
            // Built directly (not via `to_bbec`) so a sampled block keeps
            // its entry even when a degenerate period of 0 zeroes the
            // value — exactly what the seed implementation produces.
            bbec.set(block.start, value);
        }
        let estimate = EbsEstimate {
            bbec,
            dense,
            samples_per_block,
            samples_used: self.used,
            samples_unmapped: self.unmapped,
            period: self.period,
        };
        self.samples.fill(0);
        self.used = 0;
        self.unmapped = 0;
        estimate
    }
}

/// Build the EBS estimate from the eventing IPs of
/// `INST_RETIRED:PREC_DIST` samples. LBR stacks attached to those samples
/// are **discarded** (paper §V.A).
pub fn estimate(data: &PerfData, map: &BlockMap, period: u64) -> EbsEstimate {
    let mut acc = EbsAccum::new(map, period);
    for sample in data.samples_of(EventSpec::inst_retired_prec_dist()) {
        acc.observe(sample);
    }
    acc.finish()
}

/// The seed address-keyed implementation of [`estimate`], kept as the
/// reference for equivalence property tests and the `BENCH_pipeline.json`
/// perf trajectory. Produces bit-identical results; lookups go through the
/// seed's whole-map binary search ([`BlockMap::enclosing_seed`]), so this
/// measures the true pre-index baseline.
pub fn estimate_ref(data: &PerfData, map: &BlockMap, period: u64) -> EbsEstimate {
    let event = EventSpec::inst_retired_prec_dist();
    let mut samples_per_block: HashMap<u64, u64> = HashMap::new();
    let mut used = 0u64;
    let mut unmapped = 0u64;
    for sample in data.samples_of(event) {
        match map.enclosing_seed(sample.ip) {
            Some(bi) => {
                *samples_per_block.entry(map.blocks()[bi].start).or_insert(0) += 1;
                used += 1;
            }
            None => unmapped += 1,
        }
    }
    let mut bbec = Bbec::new();
    for (&start, &n) in &samples_per_block {
        let bi = map.at_start(start).expect("block exists");
        let len = map.blocks()[bi].len().max(1) as f64;
        bbec.set(start, n as f64 * period as f64 / len);
    }
    let dense = DenseBbec::from_bbec(&bbec, map);
    EbsEstimate {
        bbec,
        dense,
        samples_per_block,
        samples_used: used,
        samples_unmapped: unmapped,
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::{PerfRecord, PerfSample};
    use hbbp_program::{ImageView, Layout, ProgramBuilder, Ring, TextImage};

    /// One 5-instruction block + exit block.
    fn map_fixture() -> (BlockMap, u64, u64) {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        for i in 0..4 {
            b.push(b0, build::rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(5)));
        }
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.terminate_exit(b1, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        (map, layout.block_start(b0), layout.instr_addr(b0, 2))
    }

    fn sample_at(ip: u64) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 0,
            event: EventSpec::inst_retired_prec_dist(),
            ip,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![],
        })
    }

    #[test]
    fn whole_block_crediting_and_length_normalization() {
        let (map, b0_start, mid_ip) = map_fixture();
        // 10 samples anywhere inside the 5-instruction block ⇒
        // count = 10 * period / 5.
        let mut data = PerfData::new();
        for i in 0..10 {
            data.push(sample_at(if i % 2 == 0 { b0_start } else { mid_ip }));
        }
        let est = estimate(&data, &map, 1000);
        assert_eq!(est.samples_used, 10);
        assert_eq!(est.samples_unmapped, 0);
        assert!((est.count(b0_start) - 10.0 * 1000.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn unmapped_samples_counted_not_attributed() {
        let (map, b0_start, _) = map_fixture();
        let mut data = PerfData::new();
        data.push(sample_at(0xdead_beef));
        data.push(sample_at(b0_start));
        let est = estimate(&data, &map, 100);
        assert_eq!(est.samples_used, 1);
        assert_eq!(est.samples_unmapped, 1);
        assert_eq!(est.bbec.len(), 1);
    }

    #[test]
    fn other_event_samples_ignored() {
        let (map, b0_start, _) = map_fixture();
        let mut data = PerfData::new();
        data.push(PerfRecord::Sample(PerfSample {
            counter: 1,
            event: EventSpec::br_inst_retired_near_taken(),
            ip: b0_start,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![],
        }));
        let est = estimate(&data, &map, 100);
        assert_eq!(est.samples_used, 0);
        assert!(est.bbec.is_empty());
    }

    #[test]
    fn empty_data_is_empty_estimate() {
        let (map, _, _) = map_fixture();
        let est = estimate(&PerfData::new(), &map, 100);
        assert!(est.bbec.is_empty());
        assert_eq!(est.samples_used + est.samples_unmapped, 0);
    }

    #[test]
    fn index_and_reference_paths_agree() {
        let (map, b0_start, mid_ip) = map_fixture();
        let mut data = PerfData::new();
        for ip in [b0_start, mid_ip, 0xdead_beef, b0_start, mid_ip + 2] {
            data.push(sample_at(ip));
        }
        let fast = estimate(&data, &map, 733);
        let seed = estimate_ref(&data, &map, 733);
        assert_eq!(fast.bbec, seed.bbec);
        assert_eq!(fast.dense, seed.dense);
        assert_eq!(fast.samples_per_block, seed.samples_per_block);
        assert_eq!(fast.samples_used, seed.samples_used);
        assert_eq!(fast.samples_unmapped, seed.samples_unmapped);
        let bi = map.at_start(b0_start).unwrap();
        assert_eq!(fast.count_idx(bi), fast.count(b0_start));
    }
}

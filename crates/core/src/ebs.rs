//! The EBS estimator — paper §III.A.
//!
//! "We enhance classic EBS by applying every IP sample to all instructions
//! of the enclosing basic block. … To obtain proper instruction counts, we
//! must then divide the number of samples recorded for a basic block by
//! the instruction length of that block."

use hbbp_perf::PerfData;
use hbbp_program::{Bbec, BlockMap};
use hbbp_sim::EventSpec;
use std::collections::HashMap;

/// Result of EBS estimation.
#[derive(Debug, Clone)]
pub struct EbsEstimate {
    /// Estimated per-block execution counts.
    pub bbec: Bbec,
    /// Raw IP-sample counts per block (keyed by block start).
    pub samples_per_block: HashMap<u64, u64>,
    /// Samples whose IP fell inside the block map.
    pub samples_used: u64,
    /// Samples outside any known block (stub regions, unmapped code).
    pub samples_unmapped: u64,
    /// The sampling period used for extrapolation.
    pub period: u64,
}

impl EbsEstimate {
    /// Estimated executions of the block starting at `addr`.
    pub fn count(&self, addr: u64) -> f64 {
        self.bbec.get(addr)
    }
}

/// Build the EBS estimate from the eventing IPs of
/// `INST_RETIRED:PREC_DIST` samples. LBR stacks attached to those samples
/// are **discarded** (paper §V.A).
pub fn estimate(data: &PerfData, map: &BlockMap, period: u64) -> EbsEstimate {
    let event = EventSpec::inst_retired_prec_dist();
    let mut samples_per_block: HashMap<u64, u64> = HashMap::new();
    let mut used = 0u64;
    let mut unmapped = 0u64;
    for sample in data.samples_of(event) {
        match map.enclosing(sample.ip) {
            Some(bi) => {
                *samples_per_block.entry(map.blocks()[bi].start).or_insert(0) += 1;
                used += 1;
            }
            None => unmapped += 1,
        }
    }
    let mut bbec = Bbec::new();
    for (&start, &n) in &samples_per_block {
        let bi = map.at_start(start).expect("block exists");
        let len = map.blocks()[bi].len().max(1) as f64;
        bbec.set(start, n as f64 * period as f64 / len);
    }
    EbsEstimate {
        bbec,
        samples_per_block,
        samples_used: used,
        samples_unmapped: unmapped,
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_perf::{PerfRecord, PerfSample};
    use hbbp_program::{ImageView, Layout, ProgramBuilder, Ring, TextImage};

    /// One 5-instruction block + exit block.
    fn map_fixture() -> (BlockMap, u64, u64) {
        let mut b = ProgramBuilder::new("f");
        let m = b.module("f.bin", Ring::User);
        let f = b.function(m, "main");
        let b0 = b.block(f);
        let b1 = b.block(f);
        for i in 0..4 {
            b.push(b0, build::rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(5)));
        }
        b.terminate_branch(b0, Mnemonic::Jnz, b0, b1);
        b.terminate_exit(b1, build::bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let image = TextImage::encode(&p, &layout, p.modules()[0].id(), ImageView::Disk);
        let map = BlockMap::discover(&[image], layout.symbols()).unwrap();
        (map, layout.block_start(b0), layout.instr_addr(b0, 2))
    }

    fn sample_at(ip: u64) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 0,
            event: EventSpec::inst_retired_prec_dist(),
            ip,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![],
        })
    }

    #[test]
    fn whole_block_crediting_and_length_normalization() {
        let (map, b0_start, mid_ip) = map_fixture();
        // 10 samples anywhere inside the 5-instruction block ⇒
        // count = 10 * period / 5.
        let mut data = PerfData::new();
        for i in 0..10 {
            data.push(sample_at(if i % 2 == 0 { b0_start } else { mid_ip }));
        }
        let est = estimate(&data, &map, 1000);
        assert_eq!(est.samples_used, 10);
        assert_eq!(est.samples_unmapped, 0);
        assert!((est.count(b0_start) - 10.0 * 1000.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn unmapped_samples_counted_not_attributed() {
        let (map, b0_start, _) = map_fixture();
        let mut data = PerfData::new();
        data.push(sample_at(0xdead_beef));
        data.push(sample_at(b0_start));
        let est = estimate(&data, &map, 100);
        assert_eq!(est.samples_used, 1);
        assert_eq!(est.samples_unmapped, 1);
        assert_eq!(est.bbec.len(), 1);
    }

    #[test]
    fn other_event_samples_ignored() {
        let (map, b0_start, _) = map_fixture();
        let mut data = PerfData::new();
        data.push(PerfRecord::Sample(PerfSample {
            counter: 1,
            event: EventSpec::br_inst_retired_near_taken(),
            ip: b0_start,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![],
        }));
        let est = estimate(&data, &map, 100);
        assert_eq!(est.samples_used, 0);
        assert!(est.bbec.is_empty());
    }

    #[test]
    fn empty_data_is_empty_estimate() {
        let (map, _, _) = map_fixture();
        let est = estimate(&PerfData::new(), &map, 100);
        assert!(est.bbec.is_empty());
        assert_eq!(est.samples_used + est.samples_unmapped, 0);
    }
}

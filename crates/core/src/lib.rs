//! # hbbp-core — Hybrid Basic Block Profiling
//!
//! The primary contribution of "Low-Overhead Dynamic Instruction Mix
//! Generation using Hybrid Basic Block Profiling" (Nowak, Yasin, Szostek,
//! Zwaenepoel — ISPASS 2018), reproduced end to end:
//!
//! * [`ebs`] — the enhanced EBS estimator (whole-block sample crediting,
//!   length normalization; §III.A);
//! * [`lbr`] — LBR stream decomposition with `1/(N-1)` weights, plus
//!   entry\[0\] **bias detection** and per-block bias flags (§III.B-C);
//! * [`HybridRule`] / [`hybrid::combine`] — the per-block EBS-vs-LBR
//!   choice: the paper's distilled `len ≤ 18 → LBR` rule or a trained
//!   classification tree (§IV);
//! * [`training`] — the criteria search: label ≈1,100 blocks against
//!   instrumentation ground truth, train a CART tree, distil the cutoff
//!   (§IV.B, Figure 1);
//! * [`Analyzer`] — static block maps, instruction mixes, pivot tables,
//!   ring filtering and the kernel-text patch step (§V.B, §III.C). The
//!   estimation pipeline runs in **block-index coordinates**
//!   ([`hbbp_program::DenseBbec`]) and [`Analyzer::analyze_fused`]
//!   dispatches each perf record to the EBS/LBR accumulators in a single
//!   pass; the seed address-keyed implementations remain available as
//!   `*_ref` functions for equivalence tests and perf trajectory
//!   benchmarks;
//! * [`online`] — streaming analysis: [`OnlineAnalyzer`] consumes one
//!   record at a time (bit-identical to the batch pipeline when
//!   unwindowed) and optional time/sample windows turn long runs into
//!   per-phase instruction-mix timelines with memory bounded by the
//!   window, not the run;
//! * [`HbbpProfiler`] — the end-to-end tool: clean run, Table 4 period
//!   policy ([`periods`]), single-run dual-LBR collection, analysis;
//! * [`errors`] — the paper's error metrics (§VI): per-mnemonic error and
//!   the average weighted error.
//!
//! ```
//! use hbbp_core::{HbbpProfiler, HybridRule};
//! use hbbp_sim::Cpu;
//! use hbbp_workloads::{test40, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = test40(Scale::Tiny);
//! let profiler = HbbpProfiler::new(Cpu::with_seed(42))
//!     .with_rule(HybridRule::paper_default());
//! let result = profiler.profile(&workload)?;
//! println!("top mnemonics: {:?}", result.hbbp_mix().top(5));
//! println!("overhead: {:.2}%", result.overhead_fraction() * 100.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analyzer;
mod collector;
pub mod drift;
pub mod ebs;
pub mod errors;
mod features;
pub mod hybrid;
pub mod lbr;
pub mod online;
pub mod periods;
mod pivot;
pub mod training;

pub use analyzer::{Analysis, Analyzer};
pub use collector::{HbbpProfiler, ProfileError, ProfileResult};
pub use drift::{mix_distance, MixDrift, MixDriftRow};
pub use ebs::EbsEstimate;
pub use errors::{MixComparison, MixErrorRow};
pub use features::{BlockFeatures, FEATURE_NAMES};
pub use hybrid::{Choice, HbbpEstimate, HybridRule, PAPER_CUTOFF};
pub use lbr::{LbrEstimate, LbrOptions};
pub use online::{OnlineAnalyzer, OnlineOutcome, Window, WindowedAnalysis};
pub use periods::{period_table, RuntimeClass, SamplingPeriods};
pub use pivot::{Field, PivotRow, PivotTable};
pub use training::{train_rule, TrainingConfig, TrainingOutcome};

//! The analyze-hot-path trajectory bench: fused single-pass, index-based
//! analysis ([`Analyzer::analyze_fused`]) vs the seed two-scan,
//! address-keyed pipeline ([`Analyzer::analyze_ref`]) over the Tiny
//! training suite's recordings, plus the IP→block lookup layer on its own.
//!
//! Besides the usual `bench: … ns/iter` lines, a run writes
//! `BENCH_pipeline.json` to the current directory (the workspace root
//! under `cargo bench -p hbbp-bench --bench pipeline`) so later PRs have a
//! perf trajectory to beat. Set `PIPELINE_BENCH_QUICK=1` to evaluate a
//! two-workload subset (CI smoke mode; the JSON records which mode ran).

mod common;

use common::{quick_mode, results_block, write_workspace_root};
use criterion::{black_box, Criterion};
use hbbp_core::{Analysis, Analyzer, HybridRule, SamplingPeriods};
use hbbp_perf::{PerfData, PerfSession};
use hbbp_program::ImageView;
use hbbp_sim::{Cpu, EventSpec};
use hbbp_workloads::{training_suite, Scale};
use std::time::{Duration, Instant};

/// One workload's prepared analysis inputs.
struct Case {
    analyzer: Analyzer,
    data: PerfData,
    periods: SamplingPeriods,
}

fn build_cases(quick: bool) -> Vec<Case> {
    let mut suite = training_suite(Scale::Tiny);
    if quick {
        suite.truncate(2);
    }
    suite
        .iter()
        .map(|w| {
            let cpu = Cpu::with_seed(11);
            let instructions = cpu
                .run_clean(w.program(), w.layout(), w.oracle())
                .expect("clean run")
                .instructions;
            let periods = SamplingPeriods::scaled_for(instructions);
            let session = PerfSession::hbbp(cpu, periods.ebs, periods.lbr);
            let rec = session
                .record(w.program(), w.layout(), w.oracle())
                .expect("recording");
            let analyzer = Analyzer::from_images(&w.images(ImageView::Live), w.layout().symbols())
                .expect("discovery");
            Case {
                analyzer,
                data: rec.data,
                periods,
            }
        })
        .collect()
}

fn bench_pipeline(c: &mut Criterion, cases: &[Case]) {
    let rule = HybridRule::paper_default();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("analyze_seed", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for case in cases {
                total += case
                    .analyzer
                    .analyze_ref(&case.data, case.periods, &rule)
                    .hbbp
                    .bbec
                    .total();
            }
            black_box(total)
        })
    });
    group.bench_function("analyze_fused", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for case in cases {
                total += case
                    .analyzer
                    .analyze_fused(&case.data, case.periods, &rule)
                    .hbbp
                    .bbec
                    .total();
            }
            black_box(total)
        })
    });
    group.finish();

    // The lookup layer on its own, on the EBS estimator's actual access
    // pattern (the eventing IPs of one recording, in arrival order): the
    // seed whole-map binary search vs the page-indexed lookup vs a
    // locality cursor.
    let ips: Vec<(usize, u64)> = cases
        .iter()
        .enumerate()
        .flat_map(|(ci, case)| {
            case.data
                .samples_of(EventSpec::inst_retired_prec_dist())
                .map(move |s| (ci, s.ip))
        })
        .collect();
    let mut group = c.benchmark_group("blockmap");
    group.sample_size(20);
    group.bench_function("enclosing_seed", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(ci, ip) in &ips {
                if cases[ci].analyzer.map().enclosing_seed(ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("enclosing", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(ci, ip) in &ips {
                if cases[ci].analyzer.map().enclosing(ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("cursor_enclosing", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut cursors: Vec<_> = cases.iter().map(|c| c.analyzer.map().cursor()).collect();
            for &(ci, ip) in &ips {
                if cursors[ci].enclosing(ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

/// Interleaved seed/fused timing for the headline ratio: the two pipelines
/// alternate inside the same wall-clock window, so background machine load
/// hits both about equally and the *ratio* stays stable even when the
/// absolute ns/iter numbers wobble. Returns `(seed_ns, fused_ns)` mean
/// per full-suite run.
fn paired_speedup(cases: &[Case], rounds: u32) -> (f64, f64) {
    let rule = HybridRule::paper_default();
    let run = |f: &dyn Fn(&Case) -> Analysis| {
        let mut total = 0.0;
        for case in cases {
            total += f(case).hbbp.bbec.total();
        }
        total
    };
    let seed_fn = |case: &Case| case.analyzer.analyze_ref(&case.data, case.periods, &rule);
    let fused_fn = |case: &Case| case.analyzer.analyze_fused(&case.data, case.periods, &rule);
    let mut seed = Duration::ZERO;
    let mut fused = Duration::ZERO;
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(run(&seed_fn));
        seed += t.elapsed();
        let t = Instant::now();
        black_box(run(&fused_fn));
        fused += t.elapsed();
    }
    (
        seed.as_nanos() as f64 / rounds as f64,
        fused.as_nanos() as f64 / rounds as f64,
    )
}

/// Hand-rolled emitter (no serde in this environment): the headline
/// paired seed-vs-fused speedup plus one entry per criterion measurement.
fn emit_json(c: &Criterion, quick: bool, n_workloads: usize, paired: (f64, f64)) -> String {
    let (seed_ns, fused_ns) = paired;
    let speedup = if fused_ns > 0.0 {
        seed_ns / fused_ns
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n");
    out.push_str(&format!(
        "  \"suite\": \"training_suite(Tiny), {n_workloads} workloads\",\n"
    ));
    out.push_str(&format!("  \"quick_mode\": {quick},\n"));
    out.push_str(&format!("  \"speedup_fused_vs_seed\": {speedup:.3},\n"));
    out.push_str(&format!(
        "  \"paired\": {{ \"analyze_seed_ns\": {seed_ns:.1}, \"analyze_fused_ns\": {fused_ns:.1} }},\n"
    ));
    out.push_str(&results_block(c));
    out.push_str("\n}\n");
    out
}

fn main() {
    let quick = quick_mode("PIPELINE_BENCH_QUICK");
    let cases = build_cases(quick);
    let mut criterion = Criterion::default();
    bench_pipeline(&mut criterion, &cases);
    let paired = paired_speedup(&cases, if quick { 4 } else { 12 });
    println!(
        "paired: analyze_seed {:>14.1} ns  analyze_fused {:>14.1} ns  speedup {:.2}x",
        paired.0,
        paired.1,
        paired.0 / paired.1
    );
    let json = emit_json(&criterion, quick, cases.len(), paired);
    write_workspace_root("BENCH_pipeline.json", &json);
}

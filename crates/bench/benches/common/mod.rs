//! Plumbing shared by the `BENCH_*.json`-emitting bench binaries
//! (`pipeline.rs`, `streaming.rs`): quick-mode detection, JSON escaping,
//! the criterion-results block, and the workspace-root write. One place to
//! change the trajectory-file schema.

use criterion::Criterion;
use std::path::Path;

/// Whether the named quick-mode env toggle is set (any value except empty
/// or `"0"`).
pub fn quick_mode(var: &str) -> bool {
    std::env::var(var).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Minimal JSON string escaping (no serde in this environment).
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render every criterion measurement as the shared `"results"` block
/// (no trailing comma or newline; embed with surrounding punctuation).
pub fn results_block(c: &Criterion) -> String {
    let rows: Vec<String> = c
        .measurements()
        .iter()
        .map(|m| {
            format!(
                "    {{ \"name\": \"{}\", \"ns_per_iter\": {:.1} }}",
                json_escape(&m.name),
                m.ns_per_iter
            )
        })
        .collect();
    format!("  \"results\": [\n{}\n  ]", rows.join(",\n"))
}

/// Write a trajectory file at the workspace root. Cargo runs benches with
/// the package directory as cwd, so the path is anchored off this crate's
/// manifest instead.
pub fn write_workspace_root(filename: &str, json: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(filename);
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

//! The store/daemon bench: ingest round latency of `hbbpd` at
//! 1/4/8/64/256 concurrent clients (loopback TCP, wire decode + online
//! analysis + segment-log append per client), plus store merge and
//! aggregate-fold cost. The headline is the event-driven daemon's
//! **sub-linear scaling**: past the core count, additional clients cost
//! only their fair share of each poll loop, so a 64-client round stays
//! well under 8x an 8-client round.
//!
//! A run writes `BENCH_store.json` to the workspace root: the timings,
//! a derived scaling block, and the deterministic per-client stream
//! facts (bytes, records) that turn `ns/iter` into throughput. Set
//! `STORE_BENCH_QUICK=1` for the CI smoke mode (fewer iterations; the
//! JSON records which mode ran).

mod common;

use common::{json_escape, quick_mode, results_block, write_workspace_root};
use criterion::{black_box, Criterion};
use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_perf::PerfSession;
use hbbp_program::{Bbec, ImageView};
use hbbp_sim::Cpu;
use hbbp_store::{DaemonConfig, DaemonHandle, ProfileStore, Snapshot, StoreIdentity};
use hbbp_workloads::{phased_client, Scale};
use std::path::PathBuf;

/// Distinct prepared streams; larger fan-outs reuse them cyclically
/// (source `c` streams `streams[c % DISTINCT_STREAMS]`), so a 256-client
/// round measures daemon concurrency, not recording-generation cost.
const DISTINCT_STREAMS: u32 = 8;

/// Concurrent-client counts per ingest round.
const CLIENT_COUNTS: [u32; 5] = [1, 4, 8, 64, 256];
const PERIODS: SamplingPeriods = SamplingPeriods {
    ebs: 1009,
    lbr: 211,
};

struct Case {
    /// Pre-encoded wire bytes per client.
    streams: Vec<Vec<u8>>,
    /// Records per client stream.
    records: Vec<u64>,
    /// Per-client batch analysis (for the merge/fold benches).
    bbecs: Vec<Bbec>,
    identity: StoreIdentity,
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-store-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn build_case() -> Case {
    let mut streams = Vec::new();
    let mut records = Vec::new();
    let mut bbecs = Vec::new();
    let mut identity = None;
    let rule = HybridRule::paper_default();
    for c in 0..DISTINCT_STREAMS {
        let w = phased_client(Scale::Tiny, c);
        let session =
            PerfSession::hbbp(Cpu::with_seed(40 + u64::from(c)), PERIODS.ebs, PERIODS.lbr)
                .with_pid(1000 + c);
        let rec = session
            .record(w.program(), w.layout(), w.oracle())
            .expect("recording");
        let analyzer = Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols())
            .expect("discovery");
        if identity.is_none() {
            identity = Some(StoreIdentity::of_workload(&w, analyzer.map()));
        }
        bbecs.push(analyzer.analyze_fused(&rec.data, PERIODS, &rule).hbbp.bbec);
        records.push(rec.data.len() as u64);
        streams.push(hbbp_perf::codec::write(&rec.data).to_vec());
    }
    Case {
        streams,
        records,
        bbecs,
        identity: identity.expect("at least one client"),
    }
}

fn spawn_daemon(case: &Case, tag: &str, metrics: bool) -> DaemonHandle {
    let w = phased_client(Scale::Tiny, 0);
    let analyzer =
        Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery");
    hbbp_store::spawn(DaemonConfig {
        analyzer,
        identity: case.identity.clone(),
        periods: PERIODS,
        rule: HybridRule::paper_default(),
        window: Some(Window::Samples(256)),
        shards: 4,
        dir: tmp_dir(tag),
        workers: 0,
        queue_depth: 0,
        metrics,
    })
    .expect("daemon")
}

/// A fleet of `n` pre-spawned collector threads, one per source. The
/// threads outlive the measurement so a round times the daemon — connect,
/// stream, analysis, group commit, reply — not `thread::spawn` (which
/// alone costs ~13 ms for 256 threads on this class of machine).
struct ClientFleet {
    starts: Vec<std::sync::mpsc::SyncSender<()>>,
    done: std::sync::mpsc::Receiver<u64>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl ClientFleet {
    fn new(handle: &DaemonHandle, case: &Case, n: u32) -> ClientFleet {
        let addr = handle.addr();
        let (done_tx, done) = std::sync::mpsc::sync_channel(n as usize);
        let mut starts = Vec::new();
        let mut joins = Vec::new();
        for c in 0..n {
            let (tx, rx) = std::sync::mpsc::sync_channel::<()>(1);
            starts.push(tx);
            let bytes = case.streams[c as usize % case.streams.len()].clone();
            let done_tx = done_tx.clone();
            joins.push(std::thread::spawn(move || {
                let client = hbbp_store::StoreClient::new(addr);
                while rx.recv().is_ok() {
                    let records = client
                        .stream_bytes(c, &bytes)
                        .expect("stream to daemon")
                        .records;
                    done_tx.send(records).expect("bench alive");
                }
            }));
        }
        ClientFleet {
            starts,
            done,
            joins,
        }
    }

    /// One ingest round: every client streams concurrently; returns
    /// records ingested.
    fn round(&self) -> u64 {
        for tx in &self.starts {
            tx.send(()).expect("client alive");
        }
        (0..self.starts.len())
            .map(|_| self.done.recv().expect("client round"))
            .sum()
    }
}

impl Drop for ClientFleet {
    fn drop(&mut self) {
        self.starts.clear();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

fn bench_store(c: &mut Criterion, case: &Case, quick: bool) {
    let mut group = c.benchmark_group("store");
    for clients in CLIENT_COUNTS {
        // Big fan-outs get fewer samples: one 256-client round is itself
        // hundreds of concurrent streams' worth of measurement.
        group.sample_size(match (quick, clients >= 64) {
            (true, true) => 3,
            (true, false) => 5,
            (false, true) => 8,
            (false, false) => 15,
        });
        let handle = spawn_daemon(case, &format!("ingest{clients}"), true);
        let fleet = ClientFleet::new(&handle, case, clients);
        group.bench_function(&format!("ingest_{clients}_clients"), |b| {
            b.iter(|| black_box(fleet.round()))
        });
        drop(fleet);
        handle.shutdown().expect("shutdown");
    }
    group.sample_size(if quick { 5 } else { 15 });
    group.bench_function("merge_two_stores", |b| {
        let dir = tmp_dir("merge");
        let snapshot_b = Snapshot {
            identity: Some(case.identity.clone()),
            counts: {
                let path = dir.join("seed-b.hbbp");
                let mut s =
                    ProfileStore::open_with_identity(&path, case.identity.clone()).expect("open");
                for (i, bbec) in case.bbecs.iter().enumerate() {
                    s.append_counts(i as u32, 1, 1, bbec.clone())
                        .expect("append");
                }
                s.snapshot().counts
            },
            counts_epochs: vec![0; case.bbecs.len()],
            windows: vec![],
            window_epochs: vec![],
        };
        let mut round = 0u32;
        b.iter(|| {
            let path = dir.join(format!("merge-{round}.hbbp"));
            round += 1;
            let mut a =
                ProfileStore::open_with_identity(&path, case.identity.clone()).expect("open");
            a.merge_from(&snapshot_b).expect("merge");
            let total = black_box(a.aggregate().total());
            let _ = std::fs::remove_file(&path);
            total
        });
    });
    group.bench_function("aggregate_fold_8", |b| {
        let snapshot = Snapshot {
            identity: Some(case.identity.clone()),
            counts: case
                .bbecs
                .iter()
                .enumerate()
                .map(|(i, bbec)| hbbp_store::CountsRecord {
                    source: i as u32,
                    seq: 0,
                    ebs_samples: 1,
                    lbr_samples: 1,
                    bbec: bbec.clone(),
                })
                .collect(),
            counts_epochs: vec![0; case.bbecs.len()],
            windows: vec![],
            window_epochs: vec![],
        };
        b.iter(|| black_box(snapshot.aggregate().total()))
    });
    group.finish();
}

/// The epoch-history operations: `DRIFT`/`EPOCHS` round-trips against a
/// two-epoch daemon (epoch 0 tier-compacted, epoch 1 live), and the
/// per-window `MixDrift` check `hbbp watch` runs on every closed window.
fn bench_drift_watch(c: &mut Criterion, case: &Case, quick: bool) {
    let mut group = c.benchmark_group("store");
    group.sample_size(if quick { 5 } else { 15 });

    let handle = spawn_daemon(case, "drift", true);
    let client = hbbp_store::StoreClient::new(handle.addr());
    for s in 0..4u32 {
        client
            .stream_bytes(s, &case.streams[s as usize])
            .expect("epoch 0 ingest");
    }
    client.compact().expect("seal epoch 0");
    for s in 4..8u32 {
        client
            .stream_bytes(s, &case.streams[s as usize])
            .expect("epoch 1 ingest");
    }
    group.bench_function("epoch_drift_query_top16", |b| {
        b.iter(|| black_box(client.query_drift(0, 1, 16).expect("drift").len()))
    });
    group.bench_function("epochs_query", |b| {
        b.iter(|| black_box(client.query_epochs().expect("epochs").len()))
    });
    handle.shutdown().expect("shutdown");

    // watch's steady-state cost per closed window: one MixDrift build,
    // the divergence, and the top mover for the report line.
    let w = phased_client(Scale::Tiny, 0);
    let analyzer =
        Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery");
    let fold = |range: std::ops::Range<usize>| {
        let mut acc = Bbec::new();
        for bbec in &case.bbecs[range] {
            acc.merge(bbec);
        }
        acc
    };
    let baseline = analyzer.mix(&fold(0..4));
    let window = analyzer.mix(&fold(4..8));
    group.bench_function("watch_window_drift_check", |b| {
        b.iter(|| {
            let drift = hbbp_core::MixDrift::between(&baseline, &window);
            black_box((drift.divergence(), drift.top_movers(1).len()))
        })
    });
    group.finish();
}

/// Pinned ceiling on the registry's self-overhead, in percent of an
/// 8-client ingest round. Exceeding it fails the quick-mode (CI) run.
const OVERHEAD_THRESHOLD_PCT: f64 = 2.0;

/// What the self-overhead measurement produces for `BENCH_store.json`.
struct InstrumentationReport {
    /// Best (minimum) 8-client round with the registry active, ns.
    round_on_ns: f64,
    /// Best round against an identical daemon with a no-op handle, ns.
    round_off_ns: f64,
    /// `(on - off) / off`, clamped at zero (noise can favor either arm).
    overhead_pct: f64,
    /// Rounds timed per arm (after warmup).
    rounds: usize,
}

/// Measure the registry's self-overhead: two identical daemons — one
/// with the registry active, one carrying the no-op handle — each fed
/// 8-client ingest rounds by its own pre-spawned fleet. Rounds alternate
/// between the arms so drift (thermal, page cache) hits both equally,
/// and each arm is summarized by its **minimum** round, the estimator
/// least sensitive to scheduling noise.
///
/// The metrics-on daemon doubles as the registry-exactness check: after
/// the rounds, its counter totals must agree with the store's own STATS
/// accounting frame-for-frame, and the Prometheus rendering of the final
/// snapshot is written to `metrics-snapshot.txt` for the CI artifact.
fn bench_instrumentation(case: &Case, quick: bool) -> InstrumentationReport {
    const CLIENTS: u32 = 8;
    let rounds = if quick { 8 } else { 32 };
    let on = spawn_daemon(case, "obs-on", true);
    let off = spawn_daemon(case, "obs-off", false);
    let fleet_on = ClientFleet::new(&on, case, CLIENTS);
    let fleet_off = ClientFleet::new(&off, case, CLIENTS);
    let mut records_on = 0u64;
    let mut rounds_on = 0u64;
    for _ in 0..3 {
        records_on += fleet_on.round();
        rounds_on += 1;
        fleet_off.round();
    }
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        records_on += fleet_on.round();
        best_on = best_on.min(t.elapsed().as_secs_f64() * 1e9);
        rounds_on += 1;
        let t = std::time::Instant::now();
        fleet_off.round();
        best_off = best_off.min(t.elapsed().as_secs_f64() * 1e9);
    }
    drop(fleet_on);
    drop(fleet_off);

    // Exactness: every ingested frame is accounted for, no more, no less.
    let client = on.client();
    let stats = client.stats().expect("stats");
    let snap = client.query_metrics().expect("metrics snapshot");
    assert!(!snap.is_empty(), "metrics-on daemon must expose a snapshot");
    let counts_appended = snap
        .counter("writer.counts_appended")
        .expect("counts counter");
    assert_eq!(
        counts_appended, stats.counts_frames,
        "registry writer.counts_appended must equal STATS counts frames"
    );
    let windows_appended = snap
        .counter("writer.windows_appended")
        .expect("windows counter");
    assert_eq!(
        windows_appended, stats.window_frames,
        "registry writer.windows_appended must equal STATS window frames"
    );
    let decoded = snap.counter("decoder.records").expect("decoder counter");
    assert_eq!(
        decoded, records_on,
        "registry decoder.records must equal the records the clients were told were ingested"
    );
    let streams = rounds_on * u64::from(CLIENTS);
    let accepts = snap.counter("acceptor.accepts").expect("accepts counter");
    // One connection per client thread (kept open across rounds), plus
    // the stats/metrics queries above.
    assert!(
        accepts >= u64::from(CLIENTS),
        "acceptor must have counted the fleet's connections"
    );
    assert!(
        streams > 0 && counts_appended == streams,
        "every stream commits exactly one counts frame ({streams} streamed, {counts_appended} committed)"
    );
    write_workspace_root("metrics-snapshot.txt", &snap.to_prometheus());

    off.shutdown().expect("shutdown metrics-off daemon");
    on.shutdown().expect("shutdown metrics-on daemon");
    InstrumentationReport {
        round_on_ns: best_on,
        round_off_ns: best_off,
        overhead_pct: ((best_on - best_off) / best_off * 100.0).max(0.0),
        rounds,
    }
}

/// The `instrumentation_overhead` block of `BENCH_store.json`.
fn instrumentation_block(r: &InstrumentationReport) -> String {
    format!(
        "  \"instrumentation_overhead\": {{\n\
         \x20   \"clients\": 8,\n\
         \x20   \"rounds_per_arm\": {},\n\
         \x20   \"round_metrics_on_ms\": {:.3},\n\
         \x20   \"round_metrics_off_ms\": {:.3},\n\
         \x20   \"overhead_pct\": {:.2},\n\
         \x20   \"threshold_pct\": {OVERHEAD_THRESHOLD_PCT},\n\
         \x20   \"headline\": \"{}\"\n\
         \x20 }},\n",
        r.rounds,
        r.round_on_ns / 1e6,
        r.round_off_ns / 1e6,
        r.overhead_pct,
        json_escape(&format!(
            "the live registry costs {:.2}% of an 8-client ingest round \
             ({:.2}ms vs {:.2}ms, min-of-{} estimator) — under the {}% pin",
            r.overhead_pct,
            r.round_on_ns / 1e6,
            r.round_off_ns / 1e6,
            r.rounds,
            OVERHEAD_THRESHOLD_PCT,
        ))
    )
}

/// The drift/watch block of `BENCH_store.json`: epoch-query round-trip
/// latencies and the per-window watch check cost.
fn drift_watch_block(c: &Criterion) -> Option<String> {
    let ns = |name: &str| {
        c.measurements()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.ns_per_iter)
    };
    let drift = ns("store/epoch_drift_query_top16")?;
    let epochs = ns("store/epochs_query")?;
    let check = ns("store/watch_window_drift_check")?;
    Some(format!(
        "  \"drift_watch\": {{\n\
         \x20   \"epoch_drift_query_ms\": {:.3},\n\
         \x20   \"epochs_query_ms\": {:.3},\n\
         \x20   \"watch_window_check_us\": {:.3},\n\
         \x20   \"headline\": \"{}\"\n\
         \x20 }},\n",
        drift / 1e6,
        epochs / 1e6,
        check / 1e3,
        json_escape(&format!(
            "DRIFT top-16 across a two-epoch store answers in {:.2}ms; \
             a watch window's divergence check costs {:.1}us, so even \
             sample:32 windows add negligible overhead to streaming",
            drift / 1e6,
            check / 1e3,
        ))
    ))
}

/// Derive the scaling headline from the measured ingest rounds: with a
/// fixed core count, an N-client round should cost well under (N/8)x an
/// 8-client round once N exceeds the worker pool.
fn scaling_block(c: &Criterion) -> Option<String> {
    let round_ns = |clients: u32| {
        c.measurements()
            .iter()
            .find(|m| m.name == format!("store/ingest_{clients}_clients"))
            .map(|m| m.ns_per_iter)
    };
    let rounds: Vec<(u32, f64)> = CLIENT_COUNTS
        .iter()
        .filter_map(|&n| round_ns(n).map(|v| (n, v)))
        .collect();
    if rounds.len() != CLIENT_COUNTS.len() {
        return None;
    }
    let get = |n: u32| rounds.iter().find(|(c, _)| *c == n).expect("measured").1;
    let (r1, r8, r64, r256) = (get(1), get(8), get(64), get(256));
    // The headline chain the daemon is built for: each 8x fan-out costs
    // less than 8x the previous round (fixed per-round costs amortize,
    // additional clients pay only their fair share of the poll loops).
    let x8 = r8 / (8.0 * r1);
    let x64 = r64 / (8.0 * r8);
    let x256 = r256 / (4.0 * r64);
    let mut out = String::from("  \"scaling\": {\n");
    out.push_str(&format!(
        "    \"clients\": [{}],\n",
        CLIENT_COUNTS
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "    \"ms_per_round\": [{}],\n",
        rounds
            .iter()
            .map(|(_, ns)| format!("{:.3}", ns / 1e6))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "    \"cost_vs_linear_prev\": {{ \"8_vs_1\": {x8:.3}, \"64_vs_8\": {x64:.3}, \"256_vs_64\": {x256:.3} }},\n"
    ));
    out.push_str(&format!(
        "    \"cost_64_vs_linear_from_1\": {:.3},\n",
        r64 / (64.0 * r1)
    ));
    out.push_str(&format!("    \"sub_linear\": {},\n", x8 < 1.0 && x64 < 1.0));
    out.push_str(&format!(
        "    \"headline\": \"{}\"\n",
        json_escape(&format!(
            "sub-linear 1->8->64: 8 clients = {:.2}ms ({:.0}% of 8x the 1-client round), \
             64 clients = {:.2}ms ({:.0}% of 8x the 8-client round, {:.0}% of 64x the \
             1-client round); 256 clients = {:.2}ms",
            r8 / 1e6,
            x8 * 100.0,
            r64 / 1e6,
            x64 * 100.0,
            r64 / (64.0 * r1) * 100.0,
            r256 / 1e6,
        ))
    ));
    out.push_str("  },\n");
    Some(out)
}

fn emit_json(c: &Criterion, quick: bool, case: &Case, instr: &InstrumentationReport) -> String {
    let total_bytes: usize = case.streams.iter().map(Vec::len).sum();
    let total_records: u64 = case.records.iter().sum();
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"store\",\n");
    out.push_str("  \"suite\": \"phased_client(Tiny) x 8\",\n");
    out.push_str(&format!("  \"quick_mode\": {quick},\n"));
    out.push_str(&format!(
        "  \"streams\": {{ \"clients\": {}, \"total_bytes\": {total_bytes}, \"total_records\": {total_records}, \"per_client_bytes\": [{}], \"per_client_records\": [{}] }},\n",
        case.streams.len(),
        case.streams
            .iter()
            .map(|s| s.len().to_string())
            .collect::<Vec<_>>()
            .join(", "),
        case.records
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    if let Some(scaling) = scaling_block(c) {
        out.push_str(&scaling);
    }
    if let Some(drift_watch) = drift_watch_block(c) {
        out.push_str(&drift_watch);
    }
    out.push_str(&instrumentation_block(instr));
    out.push_str(&results_block(c));
    out.push_str("\n}\n");
    out
}

fn main() {
    let quick = quick_mode("STORE_BENCH_QUICK");
    let case = build_case();
    let mut criterion = Criterion::default();
    bench_store(&mut criterion, &case, quick);
    bench_drift_watch(&mut criterion, &case, quick);
    let instr = bench_instrumentation(&case, quick);
    println!(
        "streams: {} clients, {} wire bytes, {} records",
        case.streams.len(),
        case.streams.iter().map(Vec::len).sum::<usize>(),
        case.records.iter().sum::<u64>()
    );
    println!(
        "instrumentation overhead: {:.2}% of an 8-client round ({:.2}ms on vs {:.2}ms off)",
        instr.overhead_pct,
        instr.round_on_ns / 1e6,
        instr.round_off_ns / 1e6
    );
    let json = emit_json(&criterion, quick, &case, &instr);
    write_workspace_root("BENCH_store.json", &json);
    // The CI smoke run doubles as the overhead guard: observability that
    // taxes the hot path more than the pin is a regression, not a tunable.
    if quick && instr.overhead_pct > OVERHEAD_THRESHOLD_PCT {
        eprintln!(
            "instrumentation overhead {:.2}% exceeds the pinned {OVERHEAD_THRESHOLD_PCT}% ceiling",
            instr.overhead_pct
        );
        std::process::exit(1);
    }
}

//! The store/daemon bench: ingest throughput of `hbbpd` at 1/4/8
//! concurrent clients (loopback TCP, wire decode + online analysis +
//! segment-log append per client), plus store merge and aggregate-fold
//! cost.
//!
//! A run writes `BENCH_store.json` to the workspace root: the timings
//! plus the deterministic per-client stream facts (bytes, records) that
//! turn `ns/iter` into throughput. Set `STORE_BENCH_QUICK=1` for the CI
//! smoke mode (fewer iterations; the JSON records which mode ran).

mod common;

use common::{quick_mode, results_block, write_workspace_root};
use criterion::{black_box, Criterion};
use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_perf::PerfSession;
use hbbp_program::{Bbec, ImageView};
use hbbp_sim::Cpu;
use hbbp_store::{DaemonConfig, DaemonHandle, ProfileStore, Snapshot, StoreIdentity};
use hbbp_workloads::{phased_client, Scale};
use std::path::PathBuf;

const MAX_CLIENTS: u32 = 8;
const PERIODS: SamplingPeriods = SamplingPeriods {
    ebs: 1009,
    lbr: 211,
};

struct Case {
    /// Pre-encoded wire bytes per client.
    streams: Vec<Vec<u8>>,
    /// Records per client stream.
    records: Vec<u64>,
    /// Per-client batch analysis (for the merge/fold benches).
    bbecs: Vec<Bbec>,
    identity: StoreIdentity,
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hbbp-store-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn build_case() -> Case {
    let mut streams = Vec::new();
    let mut records = Vec::new();
    let mut bbecs = Vec::new();
    let mut identity = None;
    let rule = HybridRule::paper_default();
    for c in 0..MAX_CLIENTS {
        let w = phased_client(Scale::Tiny, c);
        let session =
            PerfSession::hbbp(Cpu::with_seed(40 + u64::from(c)), PERIODS.ebs, PERIODS.lbr)
                .with_pid(1000 + c);
        let rec = session
            .record(w.program(), w.layout(), w.oracle())
            .expect("recording");
        let analyzer = Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols())
            .expect("discovery");
        if identity.is_none() {
            identity = Some(StoreIdentity::of_workload(&w, analyzer.map()));
        }
        bbecs.push(analyzer.analyze_fused(&rec.data, PERIODS, &rule).hbbp.bbec);
        records.push(rec.data.len() as u64);
        streams.push(hbbp_perf::codec::write(&rec.data).to_vec());
    }
    Case {
        streams,
        records,
        bbecs,
        identity: identity.expect("at least one client"),
    }
}

fn spawn_daemon(case: &Case, tag: &str) -> DaemonHandle {
    let w = phased_client(Scale::Tiny, 0);
    let analyzer =
        Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery");
    hbbp_store::spawn(DaemonConfig {
        analyzer,
        identity: case.identity.clone(),
        periods: PERIODS,
        rule: HybridRule::paper_default(),
        window: Some(Window::Samples(256)),
        shards: 4,
        dir: tmp_dir(tag),
    })
    .expect("daemon")
}

/// One ingest round: `n` clients stream concurrently; returns records
/// ingested.
fn ingest_round(handle: &DaemonHandle, case: &Case, n: u32) -> u64 {
    let client = handle.client();
    std::thread::scope(|scope| {
        let joins: Vec<_> = (0..n)
            .map(|c| {
                let bytes = &case.streams[c as usize];
                scope.spawn(move || {
                    client
                        .stream_bytes(c, bytes)
                        .expect("stream to daemon")
                        .records
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("client")).sum()
    })
}

fn bench_store(c: &mut Criterion, case: &Case, quick: bool) {
    let mut group = c.benchmark_group("store");
    group.sample_size(if quick { 5 } else { 15 });
    for clients in [1u32, 4, 8] {
        let handle = spawn_daemon(case, &format!("ingest{clients}"));
        group.bench_function(&format!("ingest_{clients}_clients"), |b| {
            b.iter(|| black_box(ingest_round(&handle, case, clients)))
        });
        handle.shutdown().expect("shutdown");
    }
    group.bench_function("merge_two_stores", |b| {
        let dir = tmp_dir("merge");
        let snapshot_b = Snapshot {
            identity: Some(case.identity.clone()),
            counts: {
                let path = dir.join("seed-b.hbbp");
                let mut s =
                    ProfileStore::open_with_identity(&path, case.identity.clone()).expect("open");
                for (i, bbec) in case.bbecs.iter().enumerate() {
                    s.append_counts(i as u32, 1, 1, bbec.clone())
                        .expect("append");
                }
                s.snapshot().counts
            },
            windows: vec![],
        };
        let mut round = 0u32;
        b.iter(|| {
            let path = dir.join(format!("merge-{round}.hbbp"));
            round += 1;
            let mut a =
                ProfileStore::open_with_identity(&path, case.identity.clone()).expect("open");
            a.merge_from(&snapshot_b).expect("merge");
            let total = black_box(a.aggregate().total());
            let _ = std::fs::remove_file(&path);
            total
        });
    });
    group.bench_function("aggregate_fold_8", |b| {
        let snapshot = Snapshot {
            identity: Some(case.identity.clone()),
            counts: case
                .bbecs
                .iter()
                .enumerate()
                .map(|(i, bbec)| hbbp_store::CountsRecord {
                    source: i as u32,
                    seq: 0,
                    ebs_samples: 1,
                    lbr_samples: 1,
                    bbec: bbec.clone(),
                })
                .collect(),
            windows: vec![],
        };
        b.iter(|| black_box(snapshot.aggregate().total()))
    });
    group.finish();
}

fn emit_json(c: &Criterion, quick: bool, case: &Case) -> String {
    let total_bytes: usize = case.streams.iter().map(Vec::len).sum();
    let total_records: u64 = case.records.iter().sum();
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"store\",\n");
    out.push_str("  \"suite\": \"phased_client(Tiny) x 8\",\n");
    out.push_str(&format!("  \"quick_mode\": {quick},\n"));
    out.push_str(&format!(
        "  \"streams\": {{ \"clients\": {}, \"total_bytes\": {total_bytes}, \"total_records\": {total_records}, \"per_client_bytes\": [{}], \"per_client_records\": [{}] }},\n",
        case.streams.len(),
        case.streams
            .iter()
            .map(|s| s.len().to_string())
            .collect::<Vec<_>>()
            .join(", "),
        case.records
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str(&results_block(c));
    out.push_str("\n}\n");
    out
}

fn main() {
    let quick = quick_mode("STORE_BENCH_QUICK");
    let case = build_case();
    let mut criterion = Criterion::default();
    bench_store(&mut criterion, &case, quick);
    println!(
        "streams: {} clients, {} wire bytes, {} records",
        case.streams.len(),
        case.streams.iter().map(Vec::len).sum::<usize>(),
        case.records.iter().sum::<u64>()
    );
    let json = emit_json(&criterion, quick, &case);
    write_workspace_root("BENCH_store.json", &json);
}

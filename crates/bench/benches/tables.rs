//! Criterion benches of the remaining analysis machinery: static block
//! discovery, decision-tree training, and error metric computation.

use criterion::{criterion_group, criterion_main, Criterion};
use hbbp_core::MixComparison;
use hbbp_instrument::Instrumenter;
use hbbp_mltree::{Dataset, DecisionTree, TrainConfig};
use hbbp_program::{BlockMap, ImageView};
use hbbp_workloads::{generate, GenSpec, Scale};
use std::hint::black_box;

fn bench_discovery(c: &mut Criterion) {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let images = w.images(ImageView::Disk);
    c.bench_function("static_block_discovery", |b| {
        b.iter(|| {
            black_box(
                BlockMap::discover(&images, w.layout().symbols())
                    .unwrap()
                    .len(),
            )
        })
    });
}

fn bench_tree_training(c: &mut Criterion) {
    // A synthetic criteria-search dataset: 1,100 blocks, 6 features.
    let mut data = Dataset::new(
        [
            "block_len",
            "bias",
            "exec",
            "long_lat",
            "mean_lat",
            "backward",
        ],
        ["EBS", "LBR"],
    );
    for i in 0..1100usize {
        let len = 1 + (i * 7) % 45;
        let bias = (i % 11 == 0) as u8 as f64;
        let label = usize::from(len <= 18 && bias == 0.0);
        data.push_weighted(
            vec![
                len as f64,
                bias,
                3.0 + (i % 5) as f64,
                (i % 3 == 0) as u8 as f64,
                1.0 + (i % 9) as f64,
                (i % 2) as f64,
            ],
            label,
            1.0 + (i % 13) as f64,
        )
        .unwrap();
    }
    c.bench_function("cart_training_1100_blocks", |b| {
        b.iter(|| {
            black_box(
                DecisionTree::train(&data, &TrainConfig::default())
                    .unwrap()
                    .leaves(),
            )
        })
    });
}

fn bench_error_metrics(c: &mut Criterion) {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
    let mut measured = truth.mix.clone();
    measured.scale(1.02);
    c.bench_function("avg_weighted_error", |b| {
        b.iter(|| black_box(MixComparison::compare(&truth.mix, &measured).avg_weighted_error()))
    });
}

criterion_group!(
    benches,
    bench_discovery,
    bench_tree_training,
    bench_error_metrics
);
criterion_main!(benches);

//! Criterion benches of the analysis path: EBS/LBR estimation, hybrid
//! combination, mix derivation and pivot tables (the paper: "analyzing
//! most workloads in a minute or less").

use criterion::{criterion_group, criterion_main, Criterion};
use hbbp_core::{ebs, hybrid, lbr, Analyzer, Field, HybridRule, LbrOptions, SamplingPeriods};
use hbbp_isa::Taxonomy;
use hbbp_perf::PerfSession;
use hbbp_sim::Cpu;
use hbbp_workloads::{generate, GenSpec, Scale};
use std::hint::black_box;

fn bench_analyzer(c: &mut Criterion) {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let cpu = Cpu::with_seed(11);
    let instructions = cpu
        .run_clean(w.program(), w.layout(), w.oracle())
        .unwrap()
        .instructions;
    let periods = SamplingPeriods::scaled_for(instructions);
    let session = PerfSession::hbbp(cpu, periods.ebs, periods.lbr);
    let rec = session.record(w.program(), w.layout(), w.oracle()).unwrap();
    let analyzer = Analyzer::from_images(
        &w.images(hbbp_program::ImageView::Live),
        w.layout().symbols(),
    )
    .unwrap();

    let mut group = c.benchmark_group("analyzer");
    group.sample_size(30);

    group.bench_function("ebs_estimate", |b| {
        b.iter(|| {
            black_box(
                ebs::estimate(&rec.data, analyzer.map(), periods.ebs)
                    .bbec
                    .total(),
            )
        })
    });
    group.bench_function("lbr_estimate_with_bias_detection", |b| {
        b.iter(|| {
            black_box(
                lbr::estimate(
                    &rec.data,
                    analyzer.map(),
                    periods.lbr,
                    &LbrOptions::default(),
                )
                .bbec
                .total(),
            )
        })
    });

    let e = ebs::estimate(&rec.data, analyzer.map(), periods.ebs);
    let l = lbr::estimate(
        &rec.data,
        analyzer.map(),
        periods.lbr,
        &LbrOptions::default(),
    );
    let rule = HybridRule::paper_default();
    group.bench_function("hybrid_combine", |b| {
        b.iter(|| black_box(hybrid::combine(analyzer.map(), &e, &l, &rule).bbec.total()))
    });

    let h = hybrid::combine(analyzer.map(), &e, &l, &rule);
    group.bench_function("mix_from_bbec", |b| {
        b.iter(|| black_box(analyzer.mix(&h.bbec).total()))
    });
    group.bench_function("pivot_ext_packing", |b| {
        b.iter(|| {
            black_box(
                analyzer
                    .pivot(&h.bbec, &[Field::Taxon(Taxonomy::ext_packing())])
                    .total(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);

//! Criterion benches of the collection path: the CPU/PMU simulator in
//! clean and sampling modes (the paper's "negligibly small" collection
//! overhead claim, applied to our own engine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hbbp_core::SamplingPeriods;
use hbbp_sim::{Cpu, PmuConfig};
use hbbp_workloads::{generate, GenSpec, Scale};
use std::hint::black_box;

fn bench_collector(c: &mut Criterion) {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let cpu = Cpu::with_seed(7);
    let instructions = cpu
        .run_clean(w.program(), w.layout(), w.oracle())
        .unwrap()
        .instructions;

    let mut group = c.benchmark_group("collector");
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(20);

    group.bench_function("clean_run", |b| {
        b.iter(|| {
            let r = cpu.run_clean(w.program(), w.layout(), w.oracle()).unwrap();
            black_box(r.cycles)
        })
    });

    let periods = SamplingPeriods::scaled_for(instructions);
    let pmu = PmuConfig::hbbp_collector(periods.ebs, periods.lbr);
    group.bench_function("hbbp_dual_lbr_collection", |b| {
        b.iter(|| {
            let r = cpu.run(w.program(), w.layout(), w.oracle(), &pmu).unwrap();
            black_box(r.samples.len())
        })
    });

    let dense = PmuConfig::hbbp_collector(periods.ebs / 8 + 1, periods.lbr / 8 + 1);
    group.bench_function("dense_sampling_8x", |b| {
        b.iter(|| {
            let r = cpu
                .run(w.program(), w.layout(), w.oracle(), &dense)
                .unwrap();
            black_box(r.samples.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);

//! The streaming-path bench: batch analysis of a materialized recording
//! vs the online analyzer fed record by record, batch vs chunked stream
//! decoding, and the fused zero-copy decode→analyze pass (wire bytes
//! straight to a finished analysis, no owned records) — on the
//! phase-switching `phased` workload. The JSON gains a
//! `fused_vs_pure_analysis` block relating the fused pass to the two
//! passes it replaces.
//!
//! Besides the usual `bench: … ns/iter` lines, a run writes
//! `BENCH_streaming.json` to the workspace root: the timings, the
//! **deterministic** memory accounting (whole-recording footprint vs the
//! windowed analyzer's bounded peak) and the deterministic multi-window
//! mix timeline of the `mix-timeline` experiment. Set
//! `STREAMING_BENCH_QUICK=1` for the CI smoke mode (fewer iterations; the
//! JSON records which mode ran).

mod common;

use common::{quick_mode, results_block, write_workspace_root};
use criterion::{black_box, Criterion};
use hbbp_bench::exp::streaming::{timeline, TimelineOutcome};
use hbbp_bench::exp::ExpOptions;
use hbbp_core::{Analyzer, HybridRule, OnlineAnalyzer, SamplingPeriods, Window};
use hbbp_perf::{codec, PerfData, PerfRecord, PerfSession, StreamDecoder};
use hbbp_program::ImageView;
use hbbp_sim::Cpu;
use hbbp_workloads::{phased, Scale};

struct Case {
    analyzer: Analyzer,
    data: PerfData,
    bytes: Vec<u8>,
    periods: SamplingPeriods,
}

fn build_case() -> Case {
    let w = phased(Scale::Tiny);
    let cpu = Cpu::with_seed(11);
    let instructions = cpu
        .run_clean(w.program(), w.layout(), w.oracle())
        .expect("clean run")
        .instructions;
    let periods = SamplingPeriods::scaled_for(instructions);
    let session = PerfSession::hbbp(cpu, periods.ebs, periods.lbr);
    let rec = session
        .record(w.program(), w.layout(), w.oracle())
        .expect("recording");
    let analyzer =
        Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery");
    let bytes = codec::write(&rec.data).to_vec();
    Case {
        analyzer,
        data: rec.data,
        bytes,
        periods,
    }
}

fn bench_streaming(c: &mut Criterion, case: &Case, quick: bool) {
    let rule = HybridRule::paper_default();
    let mut group = c.benchmark_group("streaming");
    group.sample_size(if quick { 10 } else { 30 });
    group.bench_function("analyze_batch", |b| {
        b.iter(|| {
            black_box(
                case.analyzer
                    .analyze_fused(&case.data, case.periods, &rule)
                    .hbbp
                    .bbec
                    .total(),
            )
        })
    });
    group.bench_function("analyze_online", |b| {
        b.iter(|| {
            let mut online = OnlineAnalyzer::new(&case.analyzer, case.periods, rule.clone());
            for record in case.data.records() {
                online.push_record(record);
            }
            let analysis = online.finish().into_analysis().expect("unwindowed");
            black_box(analysis.hbbp.bbec.total())
        })
    });
    group.bench_function("analyze_online_windowed", |b| {
        b.iter(|| {
            let mut online = OnlineAnalyzer::new(&case.analyzer, case.periods, rule.clone())
                .with_window(Window::Samples(200));
            for record in case.data.records() {
                online.push_record(record);
            }
            black_box(online.finish().windows.len())
        })
    });
    group.bench_function("decode_batch", |b| {
        b.iter(|| black_box(codec::read(&case.bytes).expect("valid").len()))
    });
    group.bench_function("decode_chunked_4k", |b| {
        b.iter(|| {
            let mut decoder = StreamDecoder::new();
            let mut n = 0usize;
            for chunk in case.bytes.chunks(4096) {
                decoder.feed(chunk);
                while let Some(record) = decoder.next_record().expect("valid") {
                    black_box(&record);
                    n += 1;
                }
            }
            decoder.finish().expect("clean end");
            black_box(n)
        })
    });
    // The headline: wire bytes to finished analysis in one fused pass,
    // decoding borrowed views straight into the online analyzer — the
    // work `decode_batch` + `analyze_online` do in two materializing
    // passes.
    group.bench_function("decode_analyze_fused", |b| {
        b.iter(|| {
            let mut online = OnlineAnalyzer::new(&case.analyzer, case.periods, rule.clone());
            let mut decoder = StreamDecoder::new();
            for chunk in case.bytes.chunks(64 * 1024) {
                decoder.feed(chunk);
                decoder.decode_into(&mut online).expect("valid");
            }
            decoder.finish().expect("clean end");
            let analysis = online.finish().into_analysis().expect("unwindowed");
            black_box(analysis.hbbp.bbec.total())
        })
    });
    group.bench_function("decode_analyze_fused_windowed", |b| {
        b.iter(|| {
            let mut online = OnlineAnalyzer::new(&case.analyzer, case.periods, rule.clone())
                .with_window(Window::Samples(200));
            let mut decoder = StreamDecoder::new();
            for chunk in case.bytes.chunks(64 * 1024) {
                decoder.feed(chunk);
                decoder.decode_into(&mut online).expect("valid");
            }
            decoder.finish().expect("clean end");
            black_box(online.finish().windows.len())
        })
    });
    group.finish();
}

/// Deterministic memory accounting: what the batch path must hold (the
/// whole serialized recording plus every LBR stack) vs the windowed online
/// analyzer's peak buffer.
struct MemoryFacts {
    recording_bytes: usize,
    recording_records: usize,
    recording_lbr_entries: usize,
    streaming_peak_entries: usize,
    streaming_windows: usize,
}

fn memory_facts(case: &Case) -> MemoryFacts {
    let recording_lbr_entries: usize = case
        .data
        .records()
        .iter()
        .map(|r| match r {
            PerfRecord::Sample(s) => s.lbr.len(),
            _ => 0,
        })
        .sum();
    let mut online = OnlineAnalyzer::new(&case.analyzer, case.periods, HybridRule::paper_default())
        .with_window(Window::Samples(200));
    for record in case.data.records() {
        online.push_record(record);
    }
    let outcome = online.finish();
    MemoryFacts {
        recording_bytes: case.bytes.len(),
        recording_records: case.data.len(),
        recording_lbr_entries,
        streaming_peak_entries: outcome.peak_buffered_entries,
        streaming_windows: outcome.windows.len(),
    }
}

/// Look up one measurement of this run by its full `group/name` key.
fn ns_of(c: &Criterion, name: &str) -> f64 {
    c.measurements()
        .iter()
        .find(|m| m.name == name)
        .map(|m| m.ns_per_iter)
        .unwrap_or(f64::NAN)
}

/// The PR 7 headline ratio: one fused decode+analyze pass vs the two
/// materializing passes it replaces, from this run's own measurements.
fn fused_block(c: &Criterion) -> String {
    let decode = ns_of(c, "streaming/decode_batch");
    let analyze = ns_of(c, "streaming/analyze_online");
    let analyze_batch = ns_of(c, "streaming/analyze_batch");
    let fused = ns_of(c, "streaming/decode_analyze_fused");
    format!(
        "  \"fused_vs_pure_analysis\": {{\n\
         \x20   \"sum_decode_batch_plus_analyze_online_ns\": {:.1},\n\
         \x20   \"decode_analyze_fused_ns\": {fused:.1},\n\
         \x20   \"speedup\": {:.2},\n\
         \x20   \"fused_over_analyze_batch\": {:.2},\n\
         \x20   \"notes\": [\n\
         \x20     \"speedup = (decode_batch + analyze_online) / decode_analyze_fused: the fused pass replaces both materializing passes.\",\n\
         \x20     \"fused_over_analyze_batch is the remaining gap to pure in-memory analysis (1.0 would mean decoding became free).\",\n\
         \x20     \"Why decode_chunked_4k beats decode_batch (seed: 535us vs 594us): codec::read retains every decoded record in PerfData, so the allocator can never recycle the per-record Vec/String blocks, while the streaming drain drops each record immediately. Measured on this host by whole-buffer single-feed drains: retaining records costs ~1.6x over dropping them (216us vs 132us), and codec::read's cursor-based decode_payload adds the rest (406us vs 216us for the same retained set since next_record now decodes through the in-place view). 4KiB chunking itself costs only ~20us (152us vs 132us). Working as intended, so documented rather than fixed: the batch reader's contract is to materialize everything.\"\n\
         \x20   ]\n\
         \x20 }},\n"
    , decode + analyze, (decode + analyze) / fused, fused / analyze_batch)
}

fn emit_json(c: &Criterion, quick: bool, mem: &MemoryFacts, tl: &TimelineOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"streaming\",\n");
    out.push_str("  \"suite\": \"phased(Tiny)\",\n");
    out.push_str(&format!("  \"quick_mode\": {quick},\n"));
    out.push_str(&format!(
        "  \"memory\": {{ \"recording_bytes\": {}, \"recording_records\": {}, \"recording_lbr_entries\": {}, \"streaming_peak_lbr_entries\": {}, \"streaming_windows\": {} }},\n",
        mem.recording_bytes,
        mem.recording_records,
        mem.recording_lbr_entries,
        mem.streaming_peak_entries,
        mem.streaming_windows
    ));
    out.push_str(&format!(
        "  \"timeline\": {{ \"windows\": {}, \"samples\": {}, \"peak_buffered_entries\": {}, \"total_instructions\": {:.0}, \"rows\": [\n",
        tl.windows.len(),
        tl.samples_seen,
        tl.peak_buffered_entries,
        tl.total_instructions
    ));
    let rows: Vec<String> = tl
        .windows
        .iter()
        .map(|w| {
            format!(
                "    {{ \"win\": {}, \"start_cycles\": {}, \"end_cycles\": {}, \"ebs\": {}, \"lbr\": {}, \"instructions\": {:.0}, \"int_frac\": {:.4}, \"sse_frac\": {:.4}, \"avx_frac\": {:.4}, \"dominant\": \"{}\" }}",
                w.index,
                w.start_cycles,
                w.end_cycles,
                w.ebs_samples,
                w.lbr_samples,
                w.instructions,
                w.other_frac,
                w.sse_frac,
                w.avx_frac,
                w.dominant
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ] },\n");
    out.push_str(&fused_block(c));
    out.push_str(&results_block(c));
    out.push_str("\n}\n");
    out
}

fn main() {
    let quick = quick_mode("STREAMING_BENCH_QUICK");
    let case = build_case();
    let mut criterion = Criterion::default();
    bench_streaming(&mut criterion, &case, quick);
    let mem = memory_facts(&case);
    println!(
        "memory: recording {} bytes / {} LBR entries  vs  streaming peak {} entries over {} windows",
        mem.recording_bytes,
        mem.recording_lbr_entries,
        mem.streaming_peak_entries,
        mem.streaming_windows
    );
    // The deterministic timeline (same as `experiments mix-timeline`).
    let tl = timeline(&ExpOptions::default_tiny(), 12);
    let json = emit_json(&criterion, quick, &mem, &tl);
    write_workspace_root("BENCH_streaming.json", &json);
}

//! The profile→workload synthesis bench: end-to-end `hbbp synth`
//! calibration cost on the three pinned fixture targets (an INT-heavy
//! mix, an SSE-heavy mix, and one window of a phase-varying timeline),
//! through the same `SynthOptions::execute` path the subcommand runs.
//!
//! A run writes `BENCH_synth.json` to the workspace root: per-fixture
//! convergence facts (achieved total-variation distance, iterations,
//! unmatchable target share) plus the criterion timings. Set
//! `SYNTH_BENCH_QUICK=1` for the CI smoke mode (reduced iteration cap;
//! the JSON records which mode ran). In either mode, the run **fails
//! with a nonzero exit** if any fixture misses the pinned tolerance —
//! calibration quality is an invariant, not a trend line.

mod common;

use common::{json_escape, quick_mode, results_block, write_workspace_root};
use criterion::Criterion;
use hbbp_cli::record::RecordOptions;
use hbbp_cli::synth::SynthOptions;
use std::path::Path;

/// The pinned calibration tolerance (matches the `hbbp synth` default
/// and the `synth_roundtrip` integration pins).
const TOLERANCE: f64 = 0.02;

/// Iteration caps: the full cap is the subcommand default; quick mode
/// halves it and still must converge.
const FULL_ITERS: usize = 24;
const QUICK_ITERS: usize = 12;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

fn record_fixture(workload: &str, scale: &str, path: &Path) {
    RecordOptions::parse(&args(&[
        "--workload",
        workload,
        "--scale",
        scale,
        "--out",
        path.to_str().unwrap(),
    ]))
    .expect("record args")
    .run()
    .expect("fixture recording");
}

struct Fixture {
    /// Short name used in the bench id and the JSON.
    key: &'static str,
    /// What the target is, for the report.
    desc: &'static str,
    argv: Vec<String>,
}

struct Outcome {
    key: &'static str,
    desc: &'static str,
    converged: bool,
    distance: f64,
    iterations: usize,
    unmatchable: f64,
    target_mnemonics: usize,
}

fn build_fixtures(tmp: &Path) -> Vec<Fixture> {
    let int_rec = tmp.join("int.bin");
    let sse_rec = tmp.join("sse.bin");
    let phased_rec = tmp.join("phased.bin");
    record_fixture("test40", "tiny", &int_rec);
    record_fixture("fitter-sse", "tiny", &sse_rec);
    record_fixture("phased", "small", &phased_rec);
    vec![
        Fixture {
            key: "int-heavy",
            desc: "test40 (tiny) whole-run mix",
            argv: args(&[
                "--recording",
                int_rec.to_str().unwrap(),
                "--workload",
                "test40",
                "--scale",
                "tiny",
            ]),
        },
        Fixture {
            key: "sse-heavy",
            desc: "fitter-sse (tiny) whole-run mix",
            argv: args(&[
                "--recording",
                sse_rec.to_str().unwrap(),
                "--workload",
                "fitter-sse",
                "--scale",
                "tiny",
            ]),
        },
        Fixture {
            key: "phase-window",
            desc: "phased (small) timeline window 1 of samples:256",
            argv: args(&[
                "--recording",
                phased_rec.to_str().unwrap(),
                "--workload",
                "phased",
                "--scale",
                "small",
                "--window",
                "1",
                "--window-size",
                "samples:256",
            ]),
        },
    ]
}

fn emit_json(c: &Criterion, quick: bool, max_iters: usize, outcomes: &[Outcome]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"synth\",\n");
    out.push_str("  \"suite\": \"profile -> calibrated workload (3 fixture targets)\",\n");
    out.push_str(&format!("  \"quick_mode\": {quick},\n"));
    out.push_str(&format!(
        "  \"pin\": {{ \"tolerance\": {TOLERANCE}, \"max_iters\": {max_iters} }},\n"
    ));
    out.push_str("  \"fixtures\": [\n");
    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{ \"key\": \"{}\", \"target\": \"{}\", \"converged\": {}, \
                 \"distance\": {:.6}, \"iterations\": {}, \"unmatchable\": {:.6}, \
                 \"target_mnemonics\": {} }}",
                json_escape(o.key),
                json_escape(o.desc),
                o.converged,
                o.distance,
                o.iterations,
                o.unmatchable,
                o.target_mnemonics
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&results_block(c));
    out.push_str("\n}\n");
    out
}

fn main() {
    let quick = quick_mode("SYNTH_BENCH_QUICK");
    let max_iters = if quick { QUICK_ITERS } else { FULL_ITERS };
    let tmp = std::env::temp_dir().join(format!("hbbp-synth-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    let fixtures = build_fixtures(&tmp);

    let mut criterion = Criterion::default();
    let mut outcomes = Vec::new();
    for fixture in &fixtures {
        let mut argv = fixture.argv.clone();
        argv.extend(args(&["--max-iters", &max_iters.to_string()]));
        let opts = SynthOptions::parse(&argv).expect("synth args");
        let (target, desc, cal) = opts.execute().expect("calibration runs");
        println!(
            "{}: {} -> distance {:.4} in {} iters (converged: {})",
            fixture.key, desc, cal.distance, cal.iterations, cal.converged
        );
        outcomes.push(Outcome {
            key: fixture.key,
            desc: fixture.desc,
            converged: cal.converged,
            distance: cal.distance,
            iterations: cal.iterations,
            unmatchable: cal.unmatchable,
            target_mnemonics: target.len(),
        });
        criterion.bench_function(&format!("synth/calibrate/{}", fixture.key), |b| {
            b.iter(|| opts.execute().expect("calibration runs"));
        });
    }

    let json = emit_json(&criterion, quick, max_iters, &outcomes);
    write_workspace_root("BENCH_synth.json", &json);
    let _ = std::fs::remove_dir_all(&tmp);

    // The tolerance pin: a calibrator that stops converging on any
    // fixture is a regression, whatever the timings say.
    let misses: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| !o.converged || o.distance > TOLERANCE)
        .collect();
    if !misses.is_empty() {
        for o in misses {
            eprintln!(
                "{}: distance {:.4} exceeds the pinned tolerance {TOLERANCE} \
                 (converged: {}, iterations: {})",
                o.key, o.distance, o.converged, o.iterations
            );
        }
        std::process::exit(1);
    }
}

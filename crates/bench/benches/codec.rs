//! Criterion benches of the codecs: the XED-substitute instruction
//! encoder/decoder and the perf.data-like record stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hbbp_core::SamplingPeriods;
use hbbp_isa::codec;
use hbbp_perf::PerfSession;
use hbbp_sim::Cpu;
use hbbp_workloads::{generate, GenSpec, MixProfile, Scale};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_isa_codec(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let instrs = MixProfile::int_heavy().gen_block_body(10_000, &mut rng);
    let bytes = codec::encode_all(&instrs);

    let mut group = c.benchmark_group("isa_codec");
    group.throughput(Throughput::Elements(instrs.len() as u64));
    group.bench_function("encode_10k_instructions", |b| {
        b.iter(|| black_box(codec::encode_all(&instrs).len()))
    });
    group.bench_function("decode_10k_instructions", |b| {
        b.iter(|| black_box(codec::decode_all(&bytes).unwrap().len()))
    });
    group.finish();
}

fn bench_perf_codec(c: &mut Criterion) {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let cpu = Cpu::with_seed(5);
    let instructions = cpu
        .run_clean(w.program(), w.layout(), w.oracle())
        .unwrap()
        .instructions;
    let periods = SamplingPeriods::scaled_for(instructions);
    let session = PerfSession::hbbp(cpu, periods.ebs, periods.lbr);
    let rec = session.record(w.program(), w.layout(), w.oracle()).unwrap();
    let bytes = hbbp_perf::codec::write(&rec.data);

    let mut group = c.benchmark_group("perf_codec");
    group.throughput(Throughput::Elements(rec.data.len() as u64));
    group.bench_function("write_perf_data", |b| {
        b.iter(|| black_box(hbbp_perf::codec::write(&rec.data).len()))
    });
    group.bench_function("read_perf_data", |b| {
        b.iter(|| black_box(hbbp_perf::codec::read(&bytes).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_isa_codec, bench_perf_codec);
criterion_main!(benches);

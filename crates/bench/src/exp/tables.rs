//! Regeneration of the paper's Tables 1–8.

use super::{pct, secs, ExpOptions};
use crate::runner::{evaluate, evaluate_suite, BenchOutcome};
use hbbp_core::{period_table, Field};
use hbbp_isa::{Extension, Mnemonic, Taxonomy};
use hbbp_program::Ring;
use hbbp_sim::capability_table;
use hbbp_workloads::{
    clforward, fitter, hydro_post, kernel_benchmark, spec, ClVariant, FitterVariant,
};
use std::fmt::Write as _;

/// Table 1: wall-clock runtimes, clean vs SDE.
pub fn table1(opts: &ExpOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: wall clock runtimes of select benchmarks: clean (1) vs software\ninstrumentation with SDE (2). Simulated machine time.\n"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>14} {:>9}",
        "Benchmark", "(1) Clean", "(2) SDE", "factor"
    );

    let suite: Vec<_> = spec::SPEC_NAMES
        .iter()
        .map(|n| spec::workload_for(n, opts.scale))
        .collect();
    let outcomes: Vec<BenchOutcome> = evaluate_suite(&suite, opts.seed, &opts.rule);
    let total_clean: f64 = outcomes.iter().map(|o| o.clean_seconds).sum();
    let total_sde: f64 = outcomes.iter().map(|o| o.sde_seconds).sum();
    let row = |out: &mut String, name: &str, clean: f64, sde: f64| {
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>14} {:>8.2}x",
            name,
            secs(clean),
            secs(sde),
            sde / clean
        );
    };
    row(&mut out, "SPEC all", total_clean, total_sde);
    for name in ["povray", "omnetpp"] {
        let o = outcomes.iter().find(|o| o.name == name).expect("present");
        row(
            &mut out,
            &format!("SPEC {name}"),
            o.clean_seconds,
            o.sde_seconds,
        );
    }
    let rest_clean: f64 = outcomes
        .iter()
        .filter(|o| o.name != "povray" && o.name != "omnetpp")
        .map(|o| o.clean_seconds)
        .sum();
    let rest_sde: f64 = outcomes
        .iter()
        .filter(|o| o.name != "povray" && o.name != "omnetpp")
        .map(|o| o.sde_seconds)
        .sum();
    row(&mut out, "All other benchmarks", rest_clean, rest_sde);
    let hydro = evaluate(&hydro_post(opts.scale), opts.seed, &opts.rule);
    row(
        &mut out,
        "Hydro-post benchmark",
        hydro.clean_seconds,
        hydro.sde_seconds,
    );
    out
}

/// Table 2: instruction-specific PMU event support by generation.
pub fn table2(_opts: &ExpOptions) -> String {
    format!(
        "Table 2: evolution of computational instruction-specific event support\non simulated Intel server PMUs.\n\n{}",
        capability_table()
    )
}

/// Table 3: per-basic-block BBECs from EBS and LBR vs ground truth, for
/// the Fitter SSE variant. Errors above 25% are marked.
pub fn table3(opts: &ExpOptions) -> String {
    let w = fitter(FitterVariant::Sse, opts.scale);
    let o = evaluate(&w, opts.seed, &opts.rule);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: BBECs from EBS and LBR in Fitter (SSE variant), compared to\nsoftware instrumentation (SDE). Errors >25% are marked with '!'.\n"
    );
    let _ = writeln!(
        out,
        "{:<4} {:>14} {:>14} {:>14}   {:<10}",
        "BB", "EBS", "LBR", "SDE", "flags"
    );
    // The 15 hottest blocks by ground truth.
    let mut hot: Vec<(u64, f64)> = o.truth.bbec.iter().collect();
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    hot.truncate(15);
    hot.sort_by_key(|(addr, _)| *addr);
    for (i, (addr, sde)) in hot.iter().enumerate() {
        let ebs = o.profile.analysis.ebs.count(*addr);
        let lbr = o.profile.analysis.lbr.count(*addr);
        let mark = |v: f64| {
            if (v - sde).abs() / sde > 0.25 {
                "!"
            } else {
                " "
            }
        };
        let bias = if o.profile.analysis.lbr.is_biased(*addr) {
            "bias"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<4} {:>13.0}{} {:>13.0}{} {:>14.0}   {}",
            i + 1,
            ebs,
            mark(ebs),
            lbr,
            mark(lbr),
            sde,
            bias
        );
    }
    let _ = writeln!(
        out,
        "\navg weighted error: EBS {} | LBR {} | HBBP {}",
        pct(o.err_ebs),
        pct(o.err_lbr),
        pct(o.err_hbbp)
    );
    out
}

/// Table 4: EBS and LBR sampling periods.
pub fn table4(_opts: &ExpOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: EBS and LBR sampling periods in HBBP (paper values).\n"
    );
    out.push_str(&period_table());
    let _ = writeln!(
        out,
        "\nSimulation-scaled examples (periods keep sample populations comparable):"
    );
    for instrs in [1_000_000u64, 10_000_000, 100_000_000] {
        let p = hbbp_core::SamplingPeriods::scaled_for(instrs);
        let _ = writeln!(out, "  {:>12} instructions -> {}", instrs, p);
    }
    out
}

/// Table 5: Test40 evaluation.
pub fn table5(opts: &ExpOptions) -> String {
    let w = hbbp_workloads::test40(opts.scale);
    let o = evaluate(&w, opts.seed, &opts.rule);
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: Test40 evaluation.\n");
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12}",
        "", "Clean", "HBBP", "SDE"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12}",
        "Runtime",
        secs(o.clean_seconds),
        secs(o.hbbp_seconds),
        secs(o.sde_seconds)
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>11.0}%",
        "Time penalty",
        "N/A",
        pct(o.hbbp_overhead),
        (o.sde_slowdown - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12}",
        "Avg W Error",
        "N/A",
        pct(o.err_hbbp),
        "0%"
    );
    out
}

/// Table 6: expected vs measured values for the Fitter benchmark.
pub fn table6(opts: &ExpOptions) -> String {
    struct Col {
        label: &'static str,
        expected: [f64; 5], // x87, sse, avx, calls, time/track µs
        measured: [f64; 5],
        avg_w_err: f64,
    }
    let ext_total = |mix: &hbbp_program::MnemonicMix, ext: Extension| -> f64 {
        mix.iter()
            .filter(|(m, _)| m.extension() == ext)
            .map(|(_, c)| c)
            .sum()
    };
    let tracks = hbbp_workloads::fitter::tracks(opts.scale) as f64;
    let mut cols = Vec::new();
    for (variant, label) in [
        (FitterVariant::X87, "x87"),
        (FitterVariant::Sse, "SSE"),
        (FitterVariant::Avx, "AVX"),
        (FitterVariant::AvxBroken, "AVX-broken"),
        (FitterVariant::AvxFix, "AVX fix"),
    ] {
        let w = fitter(variant, opts.scale);
        let o = evaluate(&w, opts.seed, &opts.rule);
        // Expected values: what the developer expects of a *healthy* build
        // — the ground truth of the fixed build for the broken column, the
        // build's own ground truth otherwise.
        let expected_truth = if variant == FitterVariant::AvxBroken {
            let fix = fitter(FitterVariant::AvxFix, opts.scale);
            evaluate(&fix, opts.seed, &opts.rule).truth
        } else {
            evaluate(&w, opts.seed, &opts.rule).truth
        };
        let measured = o.profile.hbbp_mix_for_ring(Ring::User);
        let expected_time = if variant == FitterVariant::AvxBroken {
            let fix = fitter(FitterVariant::AvxFix, opts.scale);
            evaluate(&fix, opts.seed, &opts.rule).clean_seconds
        } else {
            o.clean_seconds
        };
        cols.push(Col {
            label,
            expected: [
                ext_total(&expected_truth.mix, Extension::X87),
                ext_total(&expected_truth.mix, Extension::Sse),
                ext_total(&expected_truth.mix, Extension::Avx),
                expected_truth.mix.get(Mnemonic::CallNear),
                expected_time / tracks * 1e6,
            ],
            measured: [
                ext_total(&measured, Extension::X87),
                ext_total(&measured, Extension::Sse),
                ext_total(&measured, Extension::Avx),
                measured.get(Mnemonic::CallNear),
                o.clean_seconds / tracks * 1e6,
            ],
            avg_w_err: o.err_hbbp,
        });
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6: expected vs measured (HBBP) values for the Fitter benchmark.\n'AVX-broken' is the compiler regression (inlining lost); 'AVX fix' the repaired build.\n"
    );
    let rows = [
        "x87 inst",
        "SSE inst",
        "AVX inst",
        "CALLs",
        "time/track(us)",
    ];
    let _ = write!(out, "{:<10} {:<16}", "", "");
    for c in &cols {
        let _ = write!(out, "{:>13}", c.label);
    }
    let _ = writeln!(out);
    for (ri, row) in rows.iter().enumerate() {
        let _ = write!(out, "{:<10} {:<16}", "Expected", row);
        for c in &cols {
            if ri == 4 {
                let _ = write!(out, "{:>13.2}", c.expected[ri]);
            } else {
                let _ = write!(out, "{:>13.0}", c.expected[ri] + 0.0);
            }
        }
        let _ = writeln!(out);
    }
    for (ri, row) in rows.iter().enumerate() {
        let _ = write!(out, "{:<10} {:<16}", "Measured", row);
        for c in &cols {
            if ri == 4 {
                let _ = write!(out, "{:>13.2}", c.measured[ri]);
            } else {
                let _ = write!(out, "{:>13.0}", c.measured[ri] + 0.0);
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<10} {:<16}", "", "AvgW Err");
    for c in &cols {
        let _ = write!(out, "{:>13}", pct(c.avg_w_err));
    }
    let _ = writeln!(out);
    out
}

/// Table 7: the synthetic kernel benchmark — per-mnemonic counts for the
/// user build (SDE and HBBP) and the kernel build (HBBP only).
pub fn table7(opts: &ExpOptions) -> String {
    let w = kernel_benchmark(opts.scale);
    let o = evaluate(&w, opts.seed, &opts.rule);
    let hbbp_user = o
        .profile
        .analyzer
        .mix_where(&o.profile.analysis.hbbp.bbec, |b| {
            b.symbol.as_deref() == Some("hello_u")
        });
    let hbbp_kernel = o
        .profile
        .analyzer
        .mix_where(&o.profile.analysis.hbbp.bbec, |b| {
            b.symbol.as_deref() == Some("hello_k")
        });
    let sde_user = {
        // Ground truth filtered to hello_u through the analyzer's map.
        o.profile
            .analyzer
            .mix_where(&o.truth.bbec, |b| b.symbol.as_deref() == Some("hello_u"))
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 7: instructions in the kernel sample. SDE sees only user space;\nHBBP profiles both rings of the same code.\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14}",
        "Method", "SDE", "HBBP", "HBBP"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14}",
        "Function", "hello_u(user)", "hello_u(user)", "hello_k(kernel)"
    );
    let mut names: Vec<Mnemonic> = sde_user
        .iter()
        .map(|(m, _)| m)
        .filter(|m| !m.is_branch() || m.category() != hbbp_isa::Category::Ret)
        .collect();
    names.sort_by_key(|m| m.name());
    let mut totals = [0.0f64; 3];
    for m in names {
        if matches!(m, Mnemonic::RetNear | Mnemonic::Jmp | Mnemonic::NopMulti) {
            continue;
        }
        let vals = [sde_user.get(m), hbbp_user.get(m), hbbp_kernel.get(m)];
        totals[0] += vals[0];
        totals[1] += vals[1];
        totals[2] += vals[2];
        let _ = writeln!(
            out,
            "{:<10} {:>14.0} {:>14.0} {:>14.0}",
            m.name(),
            vals[0],
            vals[1],
            vals[2]
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>14.0} {:>14.0} {:>14.0}",
        "Total", totals[0], totals[1], totals[2]
    );
    let user_err = (totals[1] - totals[0]).abs() / totals[0];
    let kernel_err = (totals[2] - totals[0]).abs() / totals[0];
    let _ = writeln!(
        out,
        "\nHBBP(user) vs SDE total deviation: {} | HBBP(kernel) vs SDE(user): {}",
        pct(user_err),
        pct(kernel_err)
    );
    let _ = writeln!(
        out,
        "(kernel text patched before analysis; derailed streams: {:.2}%)",
        o.profile.analysis.lbr.derail_fraction() * 100.0
    );
    out
}

/// Table 8: the CLForward vectorization view (ext × packing pivot, before
/// and after the fix).
pub fn table8(opts: &ExpOptions) -> String {
    let grab = |variant: ClVariant| {
        let w = clforward(variant, opts.scale);
        let o = evaluate(&w, opts.seed, &opts.rule);
        let pivot = o.profile.analyzer.pivot(
            &o.profile.analysis.hbbp.bbec,
            &[Field::Taxon(Taxonomy::ext_packing())],
        );
        (pivot, o)
    };
    let (before, ob) = grab(ClVariant::Before);
    let (after, oa) = grab(ClVariant::After);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 8: HBBP view of CLForward vectorization (instruction counts).\nScalar AVX replaced by fewer packed instructions after the fix.\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>16} {:>16}",
        "INST SET", "PACKING", "BEFORE", "AFTER"
    );
    let keys = [
        ("AVX", "NONE"),
        ("AVX", "SCALAR"),
        ("AVX", "PACKED"),
        ("BASE", "NONE"),
    ];
    let mut tot_b = 0.0;
    let mut tot_a = 0.0;
    for (ext, pack) in keys {
        let key = format!("{ext}/{pack}");
        let vb = before.get(&[key.as_str()]);
        let va = after.get(&[key.as_str()]);
        tot_b += vb;
        tot_a += va;
        let _ = writeln!(out, "{:<10} {:<10} {:>16.0} {:>16.0}", ext, pack, vb, va);
    }
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>16.0} {:>16.0}",
        "TOTAL",
        "",
        before.total(),
        after.total()
    );
    let _ = writeln!(
        out,
        "\n(listed buckets cover {:.0}% / {:.0}% of instructions)",
        tot_b / before.total() * 100.0,
        tot_a / after.total() * 100.0
    );
    let _ = writeln!(
        out,
        "runtime: before {} -> after {} ({:+.1}%)",
        secs(ob.clean_seconds),
        secs(oa.clean_seconds),
        (oa.clean_seconds / ob.clean_seconds - 1.0) * 100.0
    );
    out
}

//! Regeneration of the paper's Figures 1–4 (as text/series output).

use super::{pct, ExpOptions};
use crate::runner::{evaluate, evaluate_suite, BenchOutcome};
use hbbp_core::{train_rule, TrainingConfig};
use hbbp_workloads::{spec, test40, training_suite};
use std::fmt::Write as _;

/// Figure 1: the decision tree learned from the HBBP criteria search.
pub fn fig1(opts: &ExpOptions) -> String {
    let workloads = training_suite(opts.scale);
    let outcome = train_rule(&workloads, &TrainingConfig::default()).expect("training");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: decision tree generated from HBBP training data\n(gini = Gini impurity; samples = weighted training examples per node).\n"
    );
    let _ = writeln!(out, "{outcome}");
    let _ = writeln!(
        out,
        "\npaper: root cutoff consistently close to 18; block-length feature\nimportance above 0.7; bias alone not predictive."
    );
    out
}

/// Figure 2: per-SPEC-benchmark SDE slowdown, HBBP overhead, and average
/// weighted errors for HBBP, LBR and EBS.
pub fn fig2(opts: &ExpOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: SDE slowdown vs HBBP overhead, and average weighted errors\nfor HBBP, LBR and EBS on the SPEC-like suite.\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}  notes",
        "benchmark", "SDE x", "HBBP ovh", "err HBBP", "err LBR", "err EBS"
    );
    let suite: Vec<_> = spec::SPEC_NAMES
        .iter()
        .map(|name| spec::workload_for(name, opts.scale))
        .collect();
    let outcomes: Vec<BenchOutcome> = evaluate_suite(&suite, opts.seed, &opts.rule);
    for o in &outcomes {
        let note = if o.sde_unreliable {
            "SDE unreliable (PMU check) - excluded"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<12} {:>7.2}x {:>9} {:>9} {:>9} {:>9}  {}",
            o.name,
            o.sde_slowdown,
            pct(o.hbbp_overhead),
            pct(o.err_hbbp),
            pct(o.err_lbr),
            pct(o.err_ebs),
            note
        );
    }
    let valid: Vec<&BenchOutcome> = outcomes.iter().filter(|o| !o.sde_unreliable).collect();
    let n = valid.len() as f64;
    let mean = |f: fn(&BenchOutcome) -> f64| valid.iter().map(|o| f(o)).sum::<f64>() / n;
    let _ = writeln!(
        out,
        "\noverall ({} benchmarks; unreliable-SDE benchmarks excluded):",
        valid.len()
    );
    let _ = writeln!(
        out,
        "  avg weighted error: HBBP {} | LBR {} | EBS {}",
        pct(mean(|o| o.err_hbbp)),
        pct(mean(|o| o.err_lbr)),
        pct(mean(|o| o.err_ebs))
    );
    let _ = writeln!(
        out,
        "  SDE slowdown: mean {:.2}x, max {:.2}x | HBBP overhead: mean {}",
        mean(|o| o.sde_slowdown),
        valid.iter().map(|o| o.sde_slowdown).fold(0.0f64, f64::max),
        pct(mean(|o| o.hbbp_overhead))
    );
    let worse2x = valid
        .iter()
        .filter(|o| o.err_lbr >= 2.0 * o.err_hbbp || o.err_ebs >= 2.0 * o.err_hbbp)
        .count();
    let worse3x = valid
        .iter()
        .filter(|o| o.err_lbr >= 3.0 * o.err_hbbp || o.err_ebs >= 3.0 * o.err_hbbp)
        .count();
    let hbbp_loses = valid
        .iter()
        .filter(|o| o.err_hbbp > o.err_lbr.min(o.err_ebs))
        .map(|o| o.name.as_str())
        .collect::<Vec<_>>();
    let _ = writeln!(
        out,
        "  EBS or LBR at least 2x worse than HBBP: {}/{} | at least 3x: {}/{}",
        worse2x,
        valid.len(),
        worse3x,
        valid.len()
    );
    let _ = writeln!(
        out,
        "  benchmarks where HBBP loses to the better single method: {:?}",
        hbbp_loses
    );
    out
}

/// Figure 3: Test40 instruction execution counts and HBBP error for the
/// top-20 mnemonics.
pub fn fig3(opts: &ExpOptions) -> String {
    let w = test40(opts.scale);
    let o = evaluate(&w, opts.seed, &opts.rule);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Test40 execution counts (bars) and HBBP error (dots) for the\ntop-20 instruction-retiring mnemonics.\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>16} {:>9}",
        "mnemonic", "SDE count", "HBBP count", "error"
    );
    for row in o.cmp_hbbp.top_by_reference(20) {
        let _ = writeln!(
            out,
            "{:<12} {:>16.0} {:>16.0} {:>9}",
            row.mnemonic.name(),
            row.reference,
            row.measured,
            pct(row.error)
        );
    }
    let _ = writeln!(out, "\navg weighted error: {}", pct(o.err_hbbp));
    out
}

/// Figure 4: Test40 per-mnemonic errors for HBBP, LBR and EBS.
pub fn fig4(opts: &ExpOptions) -> String {
    let w = test40(opts.scale);
    let o = evaluate(&w, opts.seed, &opts.rule);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: Test40 error percentages for HBBP, LBR and EBS, top-20\ninstruction-retiring mnemonics.\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>9} {:>9}",
        "mnemonic", "HBBP", "LBR", "EBS"
    );
    for row in o.cmp_hbbp.top_by_reference(20) {
        let m = row.mnemonic;
        let lbr = o.cmp_lbr.error_for(m).unwrap_or(f64::NAN);
        let ebs = o.cmp_ebs.error_for(m).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>9} {:>9}",
            m.name(),
            pct(row.error),
            pct(lbr),
            pct(ebs)
        );
    }
    let _ = writeln!(
        out,
        "\navg weighted: HBBP {} | LBR {} | EBS {}",
        pct(o.err_hbbp),
        pct(o.err_lbr),
        pct(o.err_ebs)
    );
    out
}

//! Ablation experiments for the design choices DESIGN.md calls out:
//! the length cutoff, LBR stack depth, sampling periods, the entry\[0\]
//! quirk, and the kernel text patch.

use super::{pct, ExpOptions};
use crate::runner::evaluate;
use hbbp_core::{hybrid, HbbpProfiler, HybridRule, MixComparison, SamplingPeriods};
use hbbp_instrument::Instrumenter;
use hbbp_program::Ring;
use hbbp_sim::{Cpu, LbrQuirk};
use hbbp_workloads::{fitter, kernel_benchmark, spec, test40, FitterVariant, Workload};
use std::fmt::Write as _;

fn ablation_workloads(opts: &ExpOptions) -> Vec<Workload> {
    vec![
        test40(opts.scale),
        spec::workload_for("hmmer", opts.scale),
        spec::workload_for("gamess", opts.scale),
        spec::workload_for("cactusADM", opts.scale),
    ]
}

/// Sweep the block-length cutoff: collection happens once per workload;
/// only the per-block combination rule changes.
pub fn ablate_cutoff(opts: &ExpOptions) -> String {
    let workloads = ablation_workloads(opts);
    let cutoffs = [2usize, 6, 10, 14, 18, 22, 26, 32, 40, 1000];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: average weighted error vs block-length cutoff\n(cutoff 2 ≈ always-EBS; 1000 ≈ always-LBR).\n"
    );
    let _ = write!(out, "{:<12}", "cutoff");
    for w in &workloads {
        let _ = write!(out, "{:>12}", w.name());
    }
    let _ = writeln!(out, "{:>10}", "mean");
    let mut per_workload = Vec::new();
    for w in &workloads {
        let profiler = HbbpProfiler::new(Cpu::with_seed(opts.seed));
        let r = profiler.profile(w).expect("profile");
        let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
        per_workload.push((r, truth));
    }
    for cutoff in cutoffs {
        let rule = HybridRule::LengthCutoff(cutoff);
        let _ = write!(out, "{:<12}", cutoff);
        let mut sum = 0.0;
        for (r, truth) in &per_workload {
            let combined =
                hybrid::combine(r.analyzer.map(), &r.analysis.ebs, &r.analysis.lbr, &rule);
            let mix = r.analyzer.mix_for_ring(&combined.bbec, Ring::User);
            let err = MixComparison::compare(&truth.mix, &mix).avg_weighted_error();
            sum += err;
            let _ = write!(out, "{:>12}", pct(err));
        }
        let _ = writeln!(out, "{:>10}", pct(sum / per_workload.len() as f64));
    }
    out
}

/// Vary the reported LBR stack depth (8/16/32 entries).
pub fn ablate_stack_depth(opts: &ExpOptions) -> String {
    let workloads = ablation_workloads(opts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: LBR stack depth vs LBR-only and HBBP error.\n"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>14} {:>14}",
        "depth", "mean err LBR", "mean err HBBP", "streams/stack"
    );
    for depth in [8usize, 16, 32] {
        let mut err_lbr = 0.0;
        let mut err_hbbp = 0.0;
        let mut streams = 0.0;
        for w in &workloads {
            let mut profiler =
                HbbpProfiler::new(Cpu::with_seed(opts.seed)).with_rule(opts.rule.clone());
            profiler.pmu_template.lbr.stack_depth = depth;
            let r = profiler.profile(w).expect("profile");
            let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
            let lbr_mix = r.analyzer.mix_for_ring(&r.analysis.lbr.bbec, Ring::User);
            let hbbp_mix = r.analyzer.mix_for_ring(&r.analysis.hbbp.bbec, Ring::User);
            err_lbr += MixComparison::compare(&truth.mix, &lbr_mix).avg_weighted_error();
            err_hbbp += MixComparison::compare(&truth.mix, &hbbp_mix).avg_weighted_error();
            streams += r.analysis.lbr.streams as f64 / r.analysis.lbr.stacks.max(1) as f64;
        }
        let n = workloads.len() as f64;
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>14} {:>14.1}",
            depth,
            pct(err_lbr / n),
            pct(err_hbbp / n),
            streams / n
        );
    }
    out
}

/// Vary sampling periods around the policy value: accuracy/overhead
/// tradeoff.
pub fn ablate_periods(opts: &ExpOptions) -> String {
    let w = test40(opts.scale);
    let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: sampling period scaling vs accuracy and overhead (Test40).\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "scale", "ebs", "lbr", "err HBBP", "overhead", "samples"
    );
    // Baseline from the policy.
    let base = {
        let profiler = HbbpProfiler::new(Cpu::with_seed(opts.seed));
        let r = profiler.profile(&w).expect("profile");
        r.periods
    };
    for factor in [4.0f64, 2.0, 1.0, 0.5, 0.25] {
        let periods = SamplingPeriods {
            ebs: hbbp_core::periods::next_prime(((base.ebs as f64) * factor) as u64),
            lbr: hbbp_core::periods::next_prime(((base.lbr as f64) * factor) as u64),
        };
        let profiler = HbbpProfiler::new(Cpu::with_seed(opts.seed))
            .with_rule(opts.rule.clone())
            .with_periods(periods);
        let r = profiler.profile(&w).expect("profile");
        let mix = r.analyzer.mix_for_ring(&r.analysis.hbbp.bbec, Ring::User);
        let err = MixComparison::compare(&truth.mix, &mix).avg_weighted_error();
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>12} {:>12} {:>10}",
            format!("x{factor}"),
            periods.ebs,
            periods.lbr,
            pct(err),
            pct(r.overhead_fraction()),
            r.recording.data.samples().count()
        );
    }
    let _ = writeln!(
        out,
        "\n(smaller periods: more samples, better accuracy, more overhead —\nthe tradeoff behind Table 4's runtime-dependent policy)"
    );
    out
}

/// Toggle the LBR entry\[0\] quirk (the paper notes the erratum was fixed in
/// later processor designs after their report).
pub fn ablate_quirk(opts: &ExpOptions) -> String {
    let workloads = [
        fitter(FitterVariant::Sse, opts.scale),
        spec::workload_for("gamess", opts.scale),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: LBR entry[0] bias quirk present (Ivy Bridge-era) vs fixed\n(post-erratum) hardware.\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>14} {:>14} {:>14}",
        "workload", "quirk", "err LBR", "err HBBP"
    );
    for w in &workloads {
        for (quirk, label) in [
            (LbrQuirk::default(), "present"),
            (LbrQuirk::disabled(), "fixed"),
        ] {
            let mut profiler =
                HbbpProfiler::new(Cpu::with_seed(opts.seed)).with_rule(opts.rule.clone());
            profiler.pmu_template.lbr.quirk = quirk;
            let r = profiler.profile(w).expect("profile");
            let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
            let lbr_mix = r.analyzer.mix_for_ring(&r.analysis.lbr.bbec, Ring::User);
            let hbbp_mix = r.analyzer.mix_for_ring(&r.analysis.hbbp.bbec, Ring::User);
            let _ = writeln!(
                out,
                "{:<14} {:>14} {:>14} {:>14}",
                w.name(),
                label,
                pct(MixComparison::compare(&truth.mix, &lbr_mix).avg_weighted_error()),
                pct(MixComparison::compare(&truth.mix, &hbbp_mix).avg_weighted_error())
            );
        }
    }
    out
}

/// Toggle the kernel text patch step (§III.C): without it, streams derail
/// on stale tracepoint JMPs and kernel counts suffer.
pub fn ablate_kernel_patch(opts: &ExpOptions) -> String {
    let w = kernel_benchmark(opts.scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: analyzing kernel samples against patched vs stale (on-disk)\nkernel text (§III.C).\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>16} {:>18} {:>14}",
        "text", "derailed streams", "kernel instr total", "vs patched"
    );
    let mut patched_total = 0.0f64;
    for (patch, label) in [(true, "patched"), (false, "stale")] {
        let mut profiler =
            HbbpProfiler::new(Cpu::with_seed(opts.seed)).with_rule(opts.rule.clone());
        if !patch {
            profiler = profiler.without_kernel_patching();
        }
        let r = profiler.profile(&w).expect("profile");
        let kernel_mix = r.hbbp_mix_for_ring(Ring::Kernel);
        let total = kernel_mix.total();
        if patch {
            patched_total = total;
        }
        let delta = if patch {
            "-".to_owned()
        } else {
            format!("{:+.1}%", (total / patched_total - 1.0) * 100.0)
        };
        let _ = writeln!(
            out,
            "{:<10} {:>15.2}% {:>18.0} {:>14}",
            label,
            r.analysis.lbr.derail_fraction() * 100.0,
            total,
            delta
        );
    }
    // Outcome from evaluating with patching (reference agreement).
    let o = evaluate(&w, opts.seed, &opts.rule);
    let _ = writeln!(
        out,
        "\n(user-mode avg weighted error with patching: {})",
        pct(o.err_hbbp)
    );
    out
}

//! The fleet-aggregation experiment: many collectors, one daemon, one
//! durable aggregate profile.
//!
//! Spawns an in-process `hbbpd` over loopback TCP, streams N phased-fleet
//! clients ([`hbbp_workloads::phased_client`] — same binary, different
//! run shapes and hardware seeds) into it **concurrently**, then queries
//! the aggregate instruction mix back and checks it bit-identical against
//! the single-process reference (the canonical `(source, seq)`-ordered
//! fold of per-recording `analyze_fused` results). Also reports the store
//! footprint before and after compaction.

use super::{pct, ExpOptions};
use hbbp_core::{Analyzer, SamplingPeriods, Window};
use hbbp_perf::{PerfSession, Recording};
use hbbp_program::{Bbec, ImageView, MnemonicMix};
use hbbp_sim::Cpu;
use hbbp_store::{DaemonConfig, StoreIdentity};
use hbbp_workloads::{phased_client, Workload};
use std::fmt::Write as _;
use std::path::PathBuf;

/// How many fleet clients the experiment streams.
pub const FLEET_CLIENTS: u32 = 4;

/// One client's ingestion summary.
#[derive(Debug, Clone)]
pub struct ClientRow {
    /// Client/source id.
    pub source: u32,
    /// Records streamed over the wire.
    pub records: u64,
    /// Profiled samples analyzed by the daemon.
    pub samples: u64,
    /// Window timeline records flushed into the store.
    pub windows: u32,
    /// Estimated instructions of this client's run.
    pub instructions: f64,
}

/// Everything the fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-client rows, by source id.
    pub clients: Vec<ClientRow>,
    /// The queried aggregate mix.
    pub mix: MnemonicMix,
    /// Whether the queried aggregate equals the single-process fold
    /// bit for bit.
    pub bit_identical: bool,
    /// Counts + window frames across all partitions before compaction.
    pub frames: u64,
    /// Store bytes before compaction.
    pub bytes_before: u64,
    /// Store bytes after compaction.
    pub bytes_after: u64,
    /// Total estimated instructions across the fleet.
    pub total_instructions: f64,
}

/// Run the fleet: record each client, spawn the daemon, stream
/// concurrently, query, compact.
pub fn fleet(opts: &ExpOptions, n_clients: u32) -> FleetOutcome {
    let periods = SamplingPeriods {
        ebs: 1009,
        lbr: 211,
    };
    let clients: Vec<(Workload, Recording)> = (0..n_clients)
        .map(|c| {
            let w = phased_client(opts.scale, c);
            let session = PerfSession::hbbp(
                Cpu::with_seed(opts.seed ^ u64::from(c + 1)),
                periods.ebs,
                periods.lbr,
            )
            .with_pid(1000 + c);
            let rec = session
                .record(w.program(), w.layout(), w.oracle())
                .expect("recording");
            (w, rec)
        })
        .collect();
    let analyzer = Analyzer::from_images(
        &clients[0].0.images(ImageView::Disk),
        clients[0].0.layout().symbols(),
    )
    .expect("discovery");
    let identity = StoreIdentity::of_workload(&clients[0].0, analyzer.map());

    // Unique per invocation: concurrent fleet() calls (e.g. parallel
    // tests in one process) must not share or delete each other's
    // partition directories while a daemon holds them open.
    static NEXT_RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "hbbp-fleet-exp-{}-{}-{}",
        std::process::id(),
        opts.seed,
        NEXT_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = hbbp_store::spawn(DaemonConfig {
        analyzer: Analyzer::from_images(
            &clients[0].0.images(ImageView::Disk),
            clients[0].0.layout().symbols(),
        )
        .expect("discovery"),
        identity,
        periods,
        rule: opts.rule.clone(),
        window: Some(Window::Samples(256)),
        shards: 2,
        dir: dir.clone(),
        workers: 0,
        queue_depth: 0,
        metrics: false,
    })
    .expect("daemon");
    let client = handle.client();

    let mut rows: Vec<ClientRow> = std::thread::scope(|scope| {
        let joins: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(source, (_, rec))| {
                let source = source as u32;
                scope.spawn(move || {
                    let reply = client
                        .stream_data(source, &rec.data)
                        .expect("stream to daemon");
                    (source, reply)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| {
                let (source, reply) = j.join().expect("client thread");
                ClientRow {
                    source,
                    records: reply.records,
                    samples: reply.samples,
                    windows: reply.windows_flushed,
                    instructions: 0.0,
                }
            })
            .collect()
    });
    rows.sort_by_key(|r| r.source);

    // The single-process reference: fold batch analyses in source order.
    let mut reference = Bbec::new();
    let mut total_instructions = 0.0;
    for (i, (_, rec)) in clients.iter().enumerate() {
        let analysis = analyzer.analyze_fused(&rec.data, periods, &opts.rule);
        rows[i].instructions = analyzer.total_instructions(&analysis.hbbp.bbec);
        total_instructions += rows[i].instructions;
        reference.merge(&analysis.hbbp.bbec);
    }

    let mix = client.query_mix().expect("mix query");
    let bit_identical = mix == analyzer.mix(&reference);
    let stats = client.stats().expect("stats");
    client.compact().expect("compact");
    let after = client.stats().expect("stats after compact");
    handle.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    FleetOutcome {
        clients: rows,
        mix,
        bit_identical,
        frames: stats.counts_frames + stats.window_frames,
        bytes_before: stats.store_bytes,
        bytes_after: after.store_bytes,
        total_instructions,
    }
}

/// The `fleet-aggregation` experiment: render the fleet run as a table.
pub fn fleet_aggregation(opts: &ExpOptions) -> String {
    let outcome = fleet(opts, FLEET_CLIENTS);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet aggregation: {} clients of the phased binary streaming\n\
         concurrently into hbbpd (loopback TCP, 2 store partitions), then\n\
         one aggregate mix query over the persistent store.\n",
        outcome.clients.len()
    );
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>8} {:>14}",
        "client", "records", "samples", "windows", "instructions"
    );
    for row in &outcome.clients {
        let _ = writeln!(
            out,
            "{:<7} {:>8} {:>8} {:>8} {:>14.0}",
            row.source, row.records, row.samples, row.windows, row.instructions
        );
    }
    let _ = writeln!(
        out,
        "\naggregate mix (top 8 of {} mnemonics, {:.0} instructions):",
        outcome.mix.len(),
        outcome.total_instructions
    );
    let total = outcome.mix.total();
    for (mnemonic, count) in outcome.mix.top(8) {
        let _ = writeln!(
            out,
            "  {:<12} {:>14.0}  {:>7}",
            mnemonic.name(),
            count,
            pct(count / total)
        );
    }
    let _ = writeln!(
        out,
        "\naggregate ≡ single-process fold of batch analyses: {}",
        if outcome.bit_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    let _ = writeln!(
        out,
        "store: {} frames, {} bytes -> {} bytes after compaction ({:.1}x)",
        outcome.frames,
        outcome.bytes_before,
        outcome.bytes_after,
        outcome.bytes_before as f64 / outcome.bytes_after.max(1) as f64
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_aggregate_is_bit_identical_and_deterministic() {
        let opts = ExpOptions::default_tiny();
        let a = fleet(&opts, 3);
        assert!(a.bit_identical, "daemon aggregate must match the fold");
        assert_eq!(a.clients.len(), 3);
        assert!(a.clients.iter().all(|c| c.samples > 0 && c.windows > 0));
        assert!(a.bytes_after < a.bytes_before);
        let b = fleet(&opts, 3);
        assert_eq!(a.mix, b.mix, "fleet runs are deterministic");
        assert_eq!(a.bytes_before, b.bytes_before);
        assert_eq!(a.bytes_after, b.bytes_after);
    }

    #[test]
    fn rendered_fleet_report_carries_the_verdict() {
        let out = fleet_aggregation(&ExpOptions::default_tiny());
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("aggregate mix"));
        assert!(!out.contains("MISMATCH"));
    }
}

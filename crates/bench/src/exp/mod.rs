//! The experiment set: one function per table/figure of the paper, each
//! returning its rendered output.

pub mod ablations;
pub mod figures;
pub mod fleet;
pub mod streaming;
pub mod tables;

use hbbp_core::HybridRule;
use hbbp_workloads::Scale;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Workload scale.
    pub scale: Scale,
    /// Hardware seed (skid draws, quirk, PMI jitter).
    pub seed: u64,
    /// The HBBP decision rule to deploy.
    pub rule: HybridRule,
}

impl Default for ExpOptions {
    fn default() -> ExpOptions {
        ExpOptions {
            scale: Scale::Small,
            seed: 0xE4A,
            rule: HybridRule::paper_default(),
        }
    }
}

impl ExpOptions {
    /// Default options at [`Scale::Tiny`] — what CI smoke runs and the
    /// golden-fixture tests use.
    pub fn default_tiny() -> ExpOptions {
        ExpOptions {
            scale: Scale::Tiny,
            ..ExpOptions::default()
        }
    }
}

/// Format a fraction as a percentage with two decimals.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Format simulated seconds compactly.
pub(crate) fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2} s")
    } else if x >= 1e-3 {
        format!("{:.2} ms", x * 1e3)
    } else {
        format!("{:.1} µs", x * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0213), "2.13%");
        assert_eq!(secs(2.5), "2.50 s");
        assert_eq!(secs(0.0025), "2.50 ms");
        assert_eq!(secs(2.5e-6), "2.5 µs");
    }
}

//! The streaming experiment: a per-phase instruction-mix **timeline**.
//!
//! Batch analysis compresses a whole run into one mix; this experiment
//! runs the phase-switching [`hbbp_workloads::phased()`] workload through
//! [`OnlineAnalyzer`] with a time window narrower than one phase, so the
//! alternating integer / SSE / AVX kernels reappear as alternating
//! windows. The records never materialize as a [`hbbp_perf::PerfData`]:
//! the collection session streams straight into the analyzer, and peak
//! analyzer memory is bounded by the densest window.

use super::{pct, ExpOptions};
use hbbp_core::{Analyzer, OnlineAnalyzer, SamplingPeriods, Window};
use hbbp_isa::Extension;
use hbbp_perf::PerfSession;
use hbbp_program::{ImageView, MnemonicMix};
use hbbp_sim::Cpu;
use hbbp_workloads::phased;
use std::fmt::Write as _;

/// One timeline window in summary form (also serialized into
/// `BENCH_streaming.json` by the streaming bench).
#[derive(Debug, Clone)]
pub struct TimelineWindow {
    /// Emission order.
    pub index: usize,
    /// Window start (core cycles, nominal).
    pub start_cycles: u64,
    /// Window end (core cycles, nominal, exclusive).
    pub end_cycles: u64,
    /// EBS-event samples in the window.
    pub ebs_samples: u64,
    /// LBR-event samples in the window.
    pub lbr_samples: u64,
    /// Estimated instructions executed in the window.
    pub instructions: f64,
    /// Fraction of the window's mix that is SSE.
    pub sse_frac: f64,
    /// Fraction of the window's mix that is AVX.
    pub avx_frac: f64,
    /// Fraction of the window's mix that is neither (integer/base code).
    pub other_frac: f64,
    /// The dominant bucket's label (`"INT"`, `"SSE"` or `"AVX"`).
    pub dominant: &'static str,
}

/// Everything the timeline run produces.
#[derive(Debug, Clone)]
pub struct TimelineOutcome {
    /// Per-window rows, in time order.
    pub windows: Vec<TimelineWindow>,
    /// Profiled samples consumed in total.
    pub samples_seen: u64,
    /// Sum of per-window sample tallies (must equal `samples_seen` — the
    /// window-partition invariant, asserted by this module's tests).
    pub window_sample_sum: u64,
    /// Peak LBR entries buffered by the online analyzer.
    pub peak_buffered_entries: usize,
    /// Estimated instructions over all windows.
    pub total_instructions: f64,
}

fn ext_fracs(mix: &MnemonicMix) -> (f64, f64, f64) {
    let total = mix.total();
    if total <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let mut sse = 0.0;
    let mut avx = 0.0;
    for (m, c) in mix.iter() {
        match m.extension() {
            Extension::Sse => sse += c,
            Extension::Avx => avx += c,
            _ => {}
        }
    }
    (sse / total, avx / total, (total - sse - avx) / total)
}

/// Run the phased workload through the windowed online analyzer,
/// streaming collection directly into analysis.
pub fn timeline(opts: &ExpOptions, n_windows: u64) -> TimelineOutcome {
    let w = phased(opts.scale);
    let cpu = Cpu::with_seed(opts.seed);
    let clean = cpu
        .run_clean(w.program(), w.layout(), w.oracle())
        .expect("clean run");
    let periods = SamplingPeriods::scaled_for(clean.instructions);
    let analyzer =
        Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols()).expect("discovery");
    let width = (clean.cycles / n_windows.max(1)).max(1);
    let mut online = OnlineAnalyzer::new(&analyzer, periods, opts.rule.clone())
        .with_window(Window::TimeCycles(width));
    let session = PerfSession::hbbp(cpu, periods.ebs, periods.lbr);
    session
        .record_streaming(w.program(), w.layout(), w.oracle(), &mut online)
        .expect("recording");
    let outcome = online.finish();

    let mut windows = Vec::new();
    let mut total_instructions = 0.0;
    let mut window_sample_sum = 0;
    for win in &outcome.windows {
        let (sse_frac, avx_frac, other_frac) = ext_fracs(&win.mix);
        let dominant = if sse_frac >= avx_frac && sse_frac >= other_frac {
            "SSE"
        } else if avx_frac >= other_frac {
            "AVX"
        } else {
            "INT"
        };
        let instructions = analyzer.total_instructions(&win.analysis.hbbp.bbec);
        total_instructions += instructions;
        window_sample_sum += win.ebs_samples + win.lbr_samples;
        windows.push(TimelineWindow {
            index: win.index,
            start_cycles: win.start_cycles,
            end_cycles: win.end_cycles,
            ebs_samples: win.ebs_samples,
            lbr_samples: win.lbr_samples,
            instructions,
            sse_frac,
            avx_frac,
            other_frac,
            dominant,
        });
    }
    TimelineOutcome {
        windows,
        samples_seen: outcome.samples_seen,
        window_sample_sum,
        peak_buffered_entries: outcome.peak_buffered_entries,
        total_instructions,
    }
}

/// The `mix_timeline` experiment: render the timeline as a table.
pub fn mix_timeline(opts: &ExpOptions) -> String {
    let outcome = timeline(opts, 12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Mix timeline: phase-switching workload through the windowed online\nanalyzer (collection streamed straight into analysis, no perf.data).\n"
    );
    let _ = writeln!(
        out,
        "{:<4} {:>22} {:>6} {:>6} {:>13} {:>7} {:>7} {:>7}  dominant",
        "win", "cycles", "ebs", "lbr", "instructions", "INT", "SSE", "AVX"
    );
    for w in &outcome.windows {
        let _ = writeln!(
            out,
            "{:<4} {:>10}-{:<11} {:>6} {:>6} {:>13.0} {:>7} {:>7} {:>7}  {}",
            w.index,
            w.start_cycles,
            w.end_cycles,
            w.ebs_samples,
            w.lbr_samples,
            w.instructions,
            pct(w.other_frac),
            pct(w.sse_frac),
            pct(w.avx_frac),
            w.dominant
        );
    }
    let phases: Vec<&str> =
        outcome
            .windows
            .iter()
            .map(|w| w.dominant)
            .fold(Vec::new(), |mut acc, d| {
                if acc.last() != Some(&d) {
                    acc.push(d);
                }
                acc
            });
    let _ = writeln!(
        out,
        "\nphase sequence: {} ({} windows, {} samples)",
        phases.join(" -> "),
        outcome.windows.len(),
        outcome.samples_seen
    );
    let _ = writeln!(
        out,
        "total instructions (windowed estimate): {:.0}",
        outcome.total_instructions
    );
    let _ = writeln!(
        out,
        "peak buffered LBR entries (streaming memory bound): {}",
        outcome.peak_buffered_entries
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_partitions_samples_and_is_deterministic() {
        let opts = ExpOptions::default_tiny();
        let a = timeline(&opts, 12);
        assert_eq!(a.window_sample_sum, a.samples_seen);
        assert!(!a.windows.is_empty());
        for w in &a.windows {
            let sum = w.other_frac + w.sse_frac + w.avx_frac;
            assert!(
                w.instructions == 0.0 || (sum - 1.0).abs() < 1e-9,
                "fracs must partition the mix: {sum}"
            );
        }
        let b = timeline(&opts, 12);
        assert_eq!(a.windows.len(), b.windows.len());
        assert_eq!(a.samples_seen, b.samples_seen);
        for (x, y) in a.windows.iter().zip(&b.windows) {
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.dominant, y.dominant);
        }
    }

    #[test]
    fn timeline_resolves_alternating_phases() {
        // The phased workload cycles INT -> SSE -> AVX twice; with windows
        // narrower than a phase, every bucket must dominate somewhere and
        // the dominant sequence must change at least 5 times (6 phases).
        let outcome = timeline(&ExpOptions::default_tiny(), 12);
        let doms: Vec<&str> = outcome.windows.iter().map(|w| w.dominant).collect();
        assert!(doms.contains(&"INT"));
        assert!(doms.contains(&"SSE"));
        assert!(doms.contains(&"AVX"));
        let switches = doms.windows(2).filter(|p| p[0] != p[1]).count();
        assert!(switches >= 5, "dominant sequence {doms:?}");
    }

    #[test]
    fn rendered_timeline_mentions_every_phase() {
        let out = mix_timeline(&ExpOptions::default_tiny());
        assert!(out.contains("phase sequence:"));
        for phase in ["INT", "SSE", "AVX"] {
            assert!(out.contains(phase), "missing {phase} in:\n{out}");
        }
    }
}

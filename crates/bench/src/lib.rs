//! # hbbp-bench — experiment harness and benchmarks
//!
//! One regeneration function per table and figure of the paper (module
//! [`exp`]), the shared evaluation pipeline ([`runner`]), plus Criterion
//! benchmarks of the collector/analyzer/codec hot paths (`benches/`).
//!
//! The `experiments` binary exposes every experiment as a subcommand:
//!
//! ```text
//! experiments all            # everything, in paper order
//! experiments table1 … table8
//! experiments fig1 … fig4
//! experiments ablate-cutoff | ablate-stack | ablate-periods |
//!             ablate-quirk | ablate-kernel-patch
//! options: --scale tiny|small|full   --seed N   --rule paper|cutoff=N|always-ebs|always-lbr
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exp;
pub mod runner;

pub use exp::ExpOptions;

//! Regenerate every table and figure of the paper.

use hbbp_bench::exp::{ablations, figures, fleet, streaming, tables, ExpOptions};
use hbbp_core::HybridRule;
use hbbp_workloads::Scale;
use std::time::Instant;

/// An experiment entry: subcommand name plus the function regenerating it.
type Experiment = (&'static str, fn(&ExpOptions) -> String);

/// Every experiment this binary can regenerate, in the paper's order.
fn registry() -> Vec<Experiment> {
    vec![
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("fig1", figures::fig1),
        ("fig2", figures::fig2),
        ("table5", tables::table5),
        ("fig3", figures::fig3),
        ("fig4", figures::fig4),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("table8", tables::table8),
        ("mix-timeline", streaming::mix_timeline),
        ("fleet-aggregation", fleet::fleet_aggregation),
        ("ablate-cutoff", ablations::ablate_cutoff),
        ("ablate-stack", ablations::ablate_stack_depth),
        ("ablate-periods", ablations::ablate_periods),
        ("ablate-quirk", ablations::ablate_quirk),
        ("ablate-kernel-patch", ablations::ablate_kernel_patch),
    ]
}

/// Render the full experiment listing, one name per line.
fn listing() -> String {
    let mut out = String::from("available experiments:\n  all\n");
    for (name, _) in registry() {
        out.push_str("  ");
        out.push_str(name);
        out.push('\n');
    }
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <cmd> [--scale tiny|small|full] [--seed N] [--rule paper|cutoff=N|always-ebs|always-lbr]\n{}",
        listing()
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();
    let mut opts = ExpOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--rule" => {
                i += 1;
                opts.rule = match args.get(i).map(String::as_str) {
                    Some("paper") => HybridRule::paper_default(),
                    Some("always-ebs") => HybridRule::AlwaysEbs,
                    Some("always-lbr") => HybridRule::AlwaysLbr,
                    Some(s) if s.starts_with("cutoff=") => match s["cutoff=".len()..].parse() {
                        Ok(c) => HybridRule::LengthCutoff(c),
                        Err(_) => usage(),
                    },
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }

    let experiments = registry();
    let run = |name: &str, f: fn(&ExpOptions) -> String, opts: &ExpOptions| {
        let t0 = Instant::now();
        let output = f(opts);
        // Section framing shared with the `hbbp` CLI renderer, so every
        // tool in the workspace prints experiment output identically.
        print!("{}", hbbp_cli::render::section(name, &output));
        eprintln!("[{name} took {:.1}s]", t0.elapsed().as_secs_f64());
    };

    if cmd == "all" {
        for (name, f) in &experiments {
            run(name, *f, &opts);
        }
        return;
    }
    match experiments.iter().find(|(n, _)| *n == cmd) {
        Some((name, f)) => run(name, *f, &opts),
        None => {
            // An unknown experiment name gets the listing, not a bare
            // usage error — `experiments help` style discoverability.
            eprintln!("unknown experiment `{cmd}`\n{}", listing());
            std::process::exit(2);
        }
    }
}

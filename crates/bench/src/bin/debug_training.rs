//! Diagnostic: inspect per-block EBS/LBR error structure on the training
//! suite — used to calibrate the hardware-artefact models so the learned
//! rule reproduces the paper's shape. Not part of the public experiment
//! set.

use hbbp_core::{train_rule, HbbpProfiler, TrainingConfig};
use hbbp_instrument::Instrumenter;
use hbbp_sim::Cpu;
use hbbp_workloads::{training_suite, Scale};

fn main() {
    let workloads = training_suite(Scale::Tiny);

    // Bucket errors by block length.
    let mut buckets: Vec<(usize, usize, f64, f64, u64)> = vec![(0, 0, 0.0, 0.0, 0); 12];
    let bucket_of = |len: usize| (len / 4).min(11);

    let mut bias_blocks = 0u64;
    let mut bias_lbr_err = 0.0;
    let mut nonbias_lbr_err = 0.0;
    let mut nonbias_blocks = 0u64;

    for (i, w) in workloads.iter().enumerate() {
        let profiler = HbbpProfiler::new(Cpu::with_seed(0x7EA1 ^ (i as u64) << 8));
        let r = profiler.profile(w).unwrap();
        let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
        for block in r.analyzer.map().blocks() {
            let t = truth.bbec.get(block.start);
            if t < 30.0 {
                continue;
            }
            let e = ((r.analysis.ebs.count(block.start) - t) / t).abs();
            let l = ((r.analysis.lbr.count(block.start) - t) / t).abs();
            let b = bucket_of(block.len());
            buckets[b].0 += 1;
            if l < e {
                buckets[b].1 += 1;
            }
            buckets[b].2 += e;
            buckets[b].3 += l;
            buckets[b].4 += 1;
            if r.analysis.lbr.is_biased(block.start) {
                bias_blocks += 1;
                bias_lbr_err += l;
            } else {
                nonbias_blocks += 1;
                nonbias_lbr_err += l;
            }
        }
    }
    println!("len-bucket  n  lbr-wins  mean-ebs-err  mean-lbr-err");
    for (i, (n, lbr_wins, ebs_err, lbr_err, cnt)) in buckets.iter().enumerate() {
        if *cnt == 0 {
            continue;
        }
        println!(
            "{:>3}-{:>3}  {:>4}  {:>6.1}%  {:>10.2}%  {:>10.2}%",
            i * 4,
            i * 4 + 3,
            n,
            *lbr_wins as f64 / *n as f64 * 100.0,
            ebs_err / *cnt as f64 * 100.0,
            lbr_err / *cnt as f64 * 100.0
        );
    }
    println!(
        "\nbiased blocks: {bias_blocks} (mean LBR err {:.2}%), non-biased: {nonbias_blocks} (mean {:.2}%)",
        bias_lbr_err / bias_blocks.max(1) as f64 * 100.0,
        nonbias_lbr_err / nonbias_blocks.max(1) as f64 * 100.0
    );

    // Bias mechanics: find sticky branches in the static maps and report
    // their entry[0] statistics.
    println!("\nsticky-branch entry[0] statistics (first 3 workloads):");
    for (i, w) in workloads.iter().take(3).enumerate() {
        let profiler = HbbpProfiler::new(Cpu::with_seed(0x7EA1 ^ (i as u64) << 8));
        let r = profiler.profile(w).unwrap();
        use hbbp_sim::{is_sticky_branch, EventSpec};
        use std::collections::HashMap;
        let mut entry0: HashMap<u64, u64> = HashMap::new();
        let mut appear: HashMap<u64, u64> = HashMap::new();
        let mut total_entries = 0u64;
        let mut stacks = 0u64;
        for s in r
            .recording
            .data
            .samples_of(EventSpec::br_inst_retired_near_taken())
        {
            if s.lbr.is_empty() {
                continue;
            }
            stacks += 1;
            *entry0.entry(s.lbr[0].from).or_insert(0) += 1;
            for e in &s.lbr {
                *appear.entry(e.from).or_insert(0) += 1;
                total_entries += 1;
            }
        }
        let mut sticky_n = 0;
        for block in r.analyzer.map().blocks() {
            if block.term_kind != Some(hbbp_isa::BranchKind::Conditional) {
                continue;
            }
            let term = block.terminator_addr();
            if !is_sticky_branch(term) {
                continue;
            }
            sticky_n += 1;
            let a = appear.get(&term).copied().unwrap_or(0);
            if a < 16 {
                continue;
            }
            let e0 = entry0.get(&term).copied().unwrap_or(0);
            println!(
                "  {}: sticky branch {:#x}: entry0 {}/{} = {:.2}, fair {:.2}",
                w.name(),
                term,
                e0,
                stacks,
                e0 as f64 / stacks as f64,
                a as f64 / total_entries as f64
            );
        }
        println!(
            "  {}: {} sticky conditional branches, {} biased branches detected, {} stacks",
            w.name(),
            sticky_n,
            r.analysis.lbr.biased_branches.len(),
            stacks
        );
    }

    let outcome = train_rule(&workloads, &TrainingConfig::default()).unwrap();
    println!("\n{outcome}");
}

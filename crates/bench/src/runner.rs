//! Shared evaluation pipeline: run one workload under the clean machine,
//! the SDE-like instrumenter and the HBBP collector, and compute every
//! error metric the paper reports.

use hbbp_core::{HbbpProfiler, HybridRule, MixComparison, ProfileResult};
use hbbp_instrument::{cross_check, GroundTruth, Instrumenter};
use hbbp_program::{MnemonicMix, Ring};
use hbbp_sim::Cpu;
use hbbp_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the evaluation of one benchmark produces.
#[derive(Debug)]
pub struct BenchOutcome {
    /// Benchmark name.
    pub name: String,
    /// Clean (uninstrumented, unsampled) wall seconds.
    pub clean_seconds: f64,
    /// Instrumented (SDE) wall seconds.
    pub sde_seconds: f64,
    /// SDE slowdown factor.
    pub sde_slowdown: f64,
    /// HBBP collection wall seconds.
    pub hbbp_seconds: f64,
    /// HBBP collection overhead fraction.
    pub hbbp_overhead: f64,
    /// Average weighted error of the HBBP mix vs ground truth (user mode).
    pub err_hbbp: f64,
    /// Average weighted error of LBR alone.
    pub err_lbr: f64,
    /// Average weighted error of EBS alone.
    pub err_ebs: f64,
    /// The instrumenter's counts disagree with PMU counting — the paper's
    /// x264ref exclusion (footnote 2).
    pub sde_unreliable: bool,
    /// The full profile (estimates, analyzer, recording).
    pub profile: ProfileResult,
    /// The instrumentation ground truth.
    pub truth: GroundTruth,
    /// Per-mnemonic comparisons (HBBP, LBR, EBS vs ground truth).
    pub cmp_hbbp: MixComparison,
    /// LBR comparison.
    pub cmp_lbr: MixComparison,
    /// EBS comparison.
    pub cmp_ebs: MixComparison,
}

/// Evaluate one workload end to end.
///
/// Accuracy comparisons are restricted to user-mode instructions, like the
/// paper's (§VII.B: PIN cannot capture kernel samples, so "our accuracy
/// comparisons consider only user mode instructions").
pub fn evaluate(workload: &Workload, seed: u64, rule: &HybridRule) -> BenchOutcome {
    let mut instrumenter = Instrumenter::new().with_cost(workload.sde_cost().clone());
    if let Some(fault) = workload.sde_fault() {
        instrumenter = instrumenter.with_fault(fault);
    }
    let truth = instrumenter.run(workload.program(), workload.layout(), workload.oracle());

    let profiler = HbbpProfiler::new(Cpu::with_seed(seed)).with_rule(rule.clone());
    let profile = profiler.profile(workload).expect("profile");

    let hbbp_mix = profile.hbbp_mix_for_ring(Ring::User);
    let lbr_mix = user_mix(&profile, &profile.analysis.lbr.bbec);
    let ebs_mix = user_mix(&profile, &profile.analysis.ebs.bbec);

    let cmp_hbbp = MixComparison::compare(&truth.mix, &hbbp_mix);
    let cmp_lbr = MixComparison::compare(&truth.mix, &lbr_mix);
    let cmp_ebs = MixComparison::compare(&truth.mix, &ebs_mix);

    // PMU-counting verification of the instrumenter (catches the injected
    // x264ref defect). Kernel instructions are invisible to it.
    let kernel_instrs = profile.clean.instructions
        - profile
            .analyzer
            .total_instructions(&truth_bbec_total(&truth)) as u64;
    let check = cross_check(&truth, &profile.clean.counts, kernel_instrs);
    let freq = profile.clean.freq_ghz;

    BenchOutcome {
        name: workload.name().to_owned(),
        clean_seconds: profile.clean_seconds(),
        sde_seconds: truth.instrumented_seconds(freq),
        sde_slowdown: truth.slowdown(),
        hbbp_seconds: profile.collection_seconds(),
        hbbp_overhead: profile.overhead_fraction(),
        err_hbbp: cmp_hbbp.avg_weighted_error(),
        err_lbr: cmp_lbr.avg_weighted_error(),
        err_ebs: cmp_ebs.avg_weighted_error(),
        sde_unreliable: !check.agrees(0.005),
        profile,
        truth,
        cmp_hbbp,
        cmp_lbr,
        cmp_ebs,
    }
}

/// Evaluate a whole suite, fanning workloads out across OS threads.
///
/// Each workload is fully independent (its own program, oracle, simulated
/// CPU and analyzer), so the suite is embarrassingly parallel: workers
/// pull indices from a shared atomic counter inside a
/// [`std::thread::scope`] — no extra dependencies, no unsafe. Results come
/// back in input order and are identical to a sequential
/// `workloads.iter().map(|w| evaluate(w, seed, rule))` run.
pub fn evaluate_suite(workloads: &[Workload], seed: u64, rule: &HybridRule) -> Vec<BenchOutcome> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(workloads.len().max(1));
    if threads <= 1 {
        return workloads.iter().map(|w| evaluate(w, seed, rule)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BenchOutcome>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(workload) = workloads.get(i) else {
                    break;
                };
                let outcome = evaluate(workload, seed, rule);
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

fn truth_bbec_total(truth: &GroundTruth) -> hbbp_program::Bbec {
    truth.bbec.clone()
}

/// User-ring mix of an arbitrary BBEC of a profile.
pub fn user_mix(profile: &ProfileResult, bbec: &hbbp_program::Bbec) -> MnemonicMix {
    profile.analyzer.mix_for_ring(bbec, Ring::User)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_workloads::{generate, GenSpec, Scale};

    #[test]
    fn evaluate_produces_consistent_outcome() {
        let w = generate(&GenSpec::default(), Scale::Tiny);
        let o = evaluate(&w, 42, &HybridRule::paper_default());
        assert!(o.sde_slowdown > 1.5);
        assert!(o.hbbp_overhead < 0.05);
        assert!(o.err_hbbp < 0.25, "err_hbbp {}", o.err_hbbp);
        assert!(!o.sde_unreliable);
        assert!(o.sde_seconds > o.clean_seconds);
    }

    #[test]
    fn parallel_suite_matches_sequential() {
        let suite: Vec<_> = [("p0", 0xABCu64), ("p1", 0xABD), ("p2", 0xABE)]
            .into_iter()
            .map(|(name, seed)| {
                let spec = GenSpec {
                    name,
                    seed,
                    ..GenSpec::default()
                };
                generate(&spec, Scale::Tiny)
            })
            .collect();
        let rule = HybridRule::paper_default();
        let par = evaluate_suite(&suite, 7, &rule);
        let seq: Vec<_> = suite.iter().map(|w| evaluate(w, 7, &rule)).collect();
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.err_hbbp, s.err_hbbp);
            assert_eq!(p.err_lbr, s.err_lbr);
            assert_eq!(p.err_ebs, s.err_ebs);
            assert_eq!(p.clean_seconds, s.clean_seconds);
            assert_eq!(p.profile.analysis.hbbp.bbec, s.profile.analysis.hbbp.bbec);
        }
    }

    #[test]
    fn injected_fault_is_flagged() {
        use hbbp_instrument::MiscountFault;
        let w = generate(&GenSpec::default(), Scale::Tiny).with_sde_fault(MiscountFault {
            mnemonic: hbbp_isa::Mnemonic::Add,
            factor: 0.6,
        });
        let o = evaluate(&w, 42, &HybridRule::paper_default());
        assert!(o.sde_unreliable, "fault must be detected by cross-check");
    }
}

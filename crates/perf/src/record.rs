//! perf.data-style records.
//!
//! "Additional data collected in the perf.data file includes process events
//! (e.g. fork, exec, etc.) as well as memory map changes for subsequent
//! virtual to physical address conversion" (paper §V.A). [`PerfRecord`]
//! mirrors that record zoo; [`crate::PerfData`] is the file.

use hbbp_program::Ring;
use hbbp_sim::{EventSpec, LbrEntry};

/// One record in a perf data stream.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfRecord {
    /// Process (thread) naming, like `PERF_RECORD_COMM`.
    Comm {
        /// Process id.
        pid: u32,
        /// Thread id.
        tid: u32,
        /// Command name.
        name: String,
    },
    /// Memory mapping of an executable image, like `PERF_RECORD_MMAP`.
    Mmap {
        /// Process id (0 for kernel maps).
        pid: u32,
        /// Mapping start address.
        addr: u64,
        /// Mapping length in bytes.
        len: u64,
        /// Mapped file name.
        filename: String,
        /// Ring of the mapped code.
        ring: Ring,
    },
    /// Process fork, like `PERF_RECORD_FORK`.
    Fork {
        /// Parent pid.
        parent_pid: u32,
        /// Child pid.
        child_pid: u32,
        /// Timestamp in cycles.
        time_cycles: u64,
    },
    /// Process exit, like `PERF_RECORD_EXIT`.
    Exit {
        /// Exiting pid.
        pid: u32,
        /// Timestamp in cycles.
        time_cycles: u64,
    },
    /// A PMU sample, like `PERF_RECORD_SAMPLE`.
    Sample(PerfSample),
    /// Records dropped by the kernel (throttling), like
    /// `PERF_RECORD_LOST`.
    Lost {
        /// Number of lost samples.
        count: u64,
    },
}

/// A PMU sample as stored in the data file.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSample {
    /// Index of the PMU counter that fired.
    pub counter: u8,
    /// Event the counter was programmed with.
    pub event: EventSpec,
    /// Eventing IP.
    pub ip: u64,
    /// Timestamp in core cycles.
    pub time_cycles: u64,
    /// Process id.
    pub pid: u32,
    /// Thread id.
    pub tid: u32,
    /// Ring level at sample time.
    pub ring: Ring,
    /// LBR stack, oldest first (empty when LBR capture was off).
    pub lbr: Vec<LbrEntry>,
}

impl PerfRecord {
    /// Short tag used by the codec and debugging output.
    pub fn tag(&self) -> &'static str {
        match self {
            PerfRecord::Comm { .. } => "COMM",
            PerfRecord::Mmap { .. } => "MMAP",
            PerfRecord::Fork { .. } => "FORK",
            PerfRecord::Exit { .. } => "EXIT",
            PerfRecord::Sample(_) => "SAMPLE",
            PerfRecord::Lost { .. } => "LOST",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        use std::collections::HashSet;
        let records = [
            PerfRecord::Comm {
                pid: 1,
                tid: 1,
                name: "x".into(),
            },
            PerfRecord::Mmap {
                pid: 1,
                addr: 0,
                len: 0,
                filename: "x".into(),
                ring: Ring::User,
            },
            PerfRecord::Fork {
                parent_pid: 1,
                child_pid: 2,
                time_cycles: 0,
            },
            PerfRecord::Exit {
                pid: 1,
                time_cycles: 0,
            },
            PerfRecord::Sample(PerfSample {
                counter: 0,
                event: EventSpec::inst_retired_prec_dist(),
                ip: 0,
                time_cycles: 0,
                pid: 1,
                tid: 1,
                ring: Ring::User,
                lbr: vec![],
            }),
            PerfRecord::Lost { count: 3 },
        ];
        let tags: HashSet<_> = records.iter().map(PerfRecord::tag).collect();
        assert_eq!(tags.len(), records.len());
    }
}

//! Binary serialization of perf data files.
//!
//! The format is a simplified perf.data: a magic + version header followed
//! by length-prefixed records. Like the real format, a reader must survive
//! truncated files (collection can die mid-write) and unknown record types
//! (skipped via the length prefix).
//!
//! ```text
//! header   "HBBPPERF" (8 bytes)  version u32 LE
//! record   type u8 | payload_len u32 LE | payload
//! ```
//!
//! ```
//! use hbbp_perf::{codec, PerfData, PerfRecord};
//!
//! let mut data = PerfData::new();
//! data.push(PerfRecord::Comm { pid: 7, tid: 7, name: "demo".into() });
//! data.push(PerfRecord::Exit { pid: 7, time_cycles: 1234 });
//!
//! // write → read round-trips exactly; StreamEncoder produces the same
//! // bytes incrementally (see PerfSession::record_to_sink).
//! let bytes = codec::write(&data);
//! assert_eq!(codec::read(&bytes).unwrap(), data);
//! ```

use crate::view::{RecordView, SampleView};
use crate::{PerfData, PerfRecord, PerfSample};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hbbp_program::Ring;
use hbbp_sim::{EventKind, EventSpec, LbrEntry};
use std::fmt;

pub(crate) const MAGIC: &[u8; 8] = b"HBBPPERF";
pub(crate) const VERSION: u32 = 1;
pub(crate) const HEADER_LEN: usize = MAGIC.len() + 4;

const T_COMM: u8 = 1;
const T_MMAP: u8 = 2;
const T_FORK: u8 = 3;
const T_EXIT: u8 = 4;
const T_SAMPLE: u8 = 5;
const T_LOST: u8 = 6;

/// Errors reading a perf data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The stream does not start with the magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The stream ended inside a record.
    Truncated,
    /// A record payload is malformed.
    Corrupt {
        /// Offending record type.
        record_type: u8,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "not a perf data stream (bad magic)"),
            ReadError::BadVersion { found } => {
                write!(f, "unsupported perf data version {found}")
            }
            ReadError::Truncated => write!(f, "truncated perf data stream"),
            ReadError::Corrupt { record_type } => {
                write!(f, "corrupt record of type {record_type}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// Serialize a perf data file to bytes.
pub fn write(data: &PerfData) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + data.len() * 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    for record in data.records() {
        let payload = encode_payload(record);
        buf.put_u8(record_type(record));
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(&payload);
    }
    buf.freeze()
}

/// Deserialize a perf data file.
///
/// Unknown record types are skipped (forward compatibility); malformed or
/// truncated input is an error.
///
/// # Errors
///
/// Returns a [`ReadError`] describing the first problem encountered.
pub fn read(mut bytes: &[u8]) -> Result<PerfData, ReadError> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    bytes.advance(MAGIC.len());
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(ReadError::BadVersion { found: version });
    }
    let mut data = PerfData::new();
    while bytes.has_remaining() {
        if bytes.remaining() < 5 {
            return Err(ReadError::Truncated);
        }
        let rtype = bytes.get_u8();
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len {
            return Err(ReadError::Truncated);
        }
        let (payload, rest) = bytes.split_at(len);
        bytes = rest;
        match decode_payload(rtype, payload) {
            Ok(Some(record)) => data.push(record),
            Ok(None) => {} // unknown type skipped
            Err(()) => return Err(ReadError::Corrupt { record_type: rtype }),
        }
    }
    Ok(data)
}

/// Incremental encoder of the perf stream format onto any
/// [`std::io::Write`] — the write-side twin of [`crate::StreamDecoder`].
///
/// [`codec::write`](write()) needs the whole [`PerfData`] in memory;
/// `StreamEncoder` emits the identical bytes one record at a time, so a
/// collection session can stream straight onto a socket or a file that a
/// decoder tails concurrently. Byte-identity with the batch writer is
/// pinned by this module's tests.
///
/// As a [`crate::RecordSink`] it can terminate
/// [`crate::PerfSession::record_streaming`] directly; I/O errors raised
/// inside the sink callback are sticky and surface at
/// [`finish`](StreamEncoder::finish) (further records are dropped once an
/// error is recorded).
#[derive(Debug)]
pub struct StreamEncoder<W: std::io::Write> {
    writer: W,
    error: Option<std::io::Error>,
    records: u64,
}

impl<W: std::io::Write> StreamEncoder<W> {
    /// Start a stream: writes the magic + version header.
    ///
    /// # Errors
    ///
    /// Propagates the header write failure.
    pub fn new(mut writer: W) -> std::io::Result<StreamEncoder<W>> {
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        Ok(StreamEncoder {
            writer,
            error: None,
            records: 0,
        })
    }

    /// Encode one record frame.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure; the same error is also
    /// kept sticky for [`finish`](StreamEncoder::finish).
    pub fn write_record(&mut self, record: &PerfRecord) -> std::io::Result<()> {
        if let Some(e) = &self.error {
            return Err(std::io::Error::new(e.kind(), e.to_string()));
        }
        let payload = encode_payload(record);
        let frame = |w: &mut W| -> std::io::Result<()> {
            w.write_all(&[record_type(record)])?;
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&payload)
        };
        match frame(&mut self.writer) {
            Ok(()) => {
                self.records += 1;
                Ok(())
            }
            Err(e) => {
                self.error = Some(std::io::Error::new(e.kind(), e.to_string()));
                Err(e)
            }
        }
    }

    /// Records successfully encoded so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// End the stream: flush and hand the writer back, or report the
    /// first error swallowed by the [`crate::RecordSink`] path.
    ///
    /// # Errors
    ///
    /// Returns the sticky error from a failed [`crate::RecordSink`]
    /// delivery, or the flush failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: std::io::Write> crate::RecordSink for StreamEncoder<W> {
    fn record(&mut self, record: PerfRecord) {
        let _ = self.write_record(&record);
    }
}

fn record_type(record: &PerfRecord) -> u8 {
    match record {
        PerfRecord::Comm { .. } => T_COMM,
        PerfRecord::Mmap { .. } => T_MMAP,
        PerfRecord::Fork { .. } => T_FORK,
        PerfRecord::Exit { .. } => T_EXIT,
        PerfRecord::Sample(_) => T_SAMPLE,
        PerfRecord::Lost { .. } => T_LOST,
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn encode_payload(record: &PerfRecord) -> BytesMut {
    let mut buf = BytesMut::new();
    match record {
        PerfRecord::Comm { pid, tid, name } => {
            buf.put_u32_le(*pid);
            buf.put_u32_le(*tid);
            put_string(&mut buf, name);
        }
        PerfRecord::Mmap {
            pid,
            addr,
            len,
            filename,
            ring,
        } => {
            buf.put_u32_le(*pid);
            buf.put_u64_le(*addr);
            buf.put_u64_le(*len);
            buf.put_u8(ring_code(*ring));
            put_string(&mut buf, filename);
        }
        PerfRecord::Fork {
            parent_pid,
            child_pid,
            time_cycles,
        } => {
            buf.put_u32_le(*parent_pid);
            buf.put_u32_le(*child_pid);
            buf.put_u64_le(*time_cycles);
        }
        PerfRecord::Exit { pid, time_cycles } => {
            buf.put_u32_le(*pid);
            buf.put_u64_le(*time_cycles);
        }
        PerfRecord::Sample(s) => {
            buf.put_u8(s.counter);
            buf.put_u8(s.event.kind.index() as u8);
            buf.put_u8(s.event.precise as u8);
            buf.put_u64_le(s.ip);
            buf.put_u64_le(s.time_cycles);
            buf.put_u32_le(s.pid);
            buf.put_u32_le(s.tid);
            buf.put_u8(ring_code(s.ring));
            buf.put_u16_le(s.lbr.len() as u16);
            for e in &s.lbr {
                buf.put_u64_le(e.from);
                buf.put_u64_le(e.to);
            }
        }
        PerfRecord::Lost { count } => buf.put_u64_le(*count),
    }
    buf
}

/// Whether `rtype` is a record type this codec version can decode (used
/// by the stream decoder's resync scan to judge candidate frames).
pub(crate) fn is_known_type(rtype: u8) -> bool {
    (T_COMM..=T_LOST).contains(&rtype)
}

pub(crate) fn decode_payload(rtype: u8, mut p: &[u8]) -> Result<Option<PerfRecord>, ()> {
    fn need(p: &[u8], n: usize) -> Result<(), ()> {
        if p.remaining() < n {
            Err(())
        } else {
            Ok(())
        }
    }
    fn get_string(p: &mut &[u8]) -> Result<String, ()> {
        need(p, 2)?;
        let n = p.get_u16_le() as usize;
        need(p, n)?;
        let (s, rest) = p.split_at(n);
        let out = String::from_utf8(s.to_vec()).map_err(|_| ())?;
        *p = rest;
        Ok(out)
    }
    let record = match rtype {
        T_COMM => {
            need(p, 8)?;
            let pid = p.get_u32_le();
            let tid = p.get_u32_le();
            let name = get_string(&mut p)?;
            PerfRecord::Comm { pid, tid, name }
        }
        T_MMAP => {
            need(p, 21)?;
            let pid = p.get_u32_le();
            let addr = p.get_u64_le();
            let len = p.get_u64_le();
            let ring = ring_from_code(p.get_u8()).ok_or(())?;
            let filename = get_string(&mut p)?;
            PerfRecord::Mmap {
                pid,
                addr,
                len,
                filename,
                ring,
            }
        }
        T_FORK => {
            need(p, 16)?;
            PerfRecord::Fork {
                parent_pid: p.get_u32_le(),
                child_pid: p.get_u32_le(),
                time_cycles: p.get_u64_le(),
            }
        }
        T_EXIT => {
            need(p, 12)?;
            PerfRecord::Exit {
                pid: p.get_u32_le(),
                time_cycles: p.get_u64_le(),
            }
        }
        T_SAMPLE => {
            need(p, 3 + 8 + 8 + 4 + 4 + 1 + 2)?;
            let counter = p.get_u8();
            let kind_idx = p.get_u8() as usize;
            let precise = p.get_u8() != 0;
            let kind = *EventKind::ALL.get(kind_idx).ok_or(())?;
            let ip = p.get_u64_le();
            let time_cycles = p.get_u64_le();
            let pid = p.get_u32_le();
            let tid = p.get_u32_le();
            let ring = ring_from_code(p.get_u8()).ok_or(())?;
            let n = p.get_u16_le() as usize;
            need(p, n * 16)?;
            let mut lbr = Vec::with_capacity(n);
            for _ in 0..n {
                let from = p.get_u64_le();
                let to = p.get_u64_le();
                lbr.push(LbrEntry { from, to });
            }
            PerfRecord::Sample(PerfSample {
                counter,
                event: EventSpec { kind, precise },
                ip,
                time_cycles,
                pid,
                tid,
                ring,
                lbr,
            })
        }
        T_LOST => {
            need(p, 8)?;
            PerfRecord::Lost {
                count: p.get_u64_le(),
            }
        }
        _ => return Ok(None),
    };
    // A frame whose declared length exceeds what its payload actually
    // encodes is malformed (most likely a corrupted length prefix): a
    // decode must consume the payload exactly. This is also what lets the
    // stream decoder's resync scan reject false re-anchors.
    if p.has_remaining() {
        return Err(());
    }
    Ok(Some(record))
}

/// Decode one frame payload as a borrowed [`RecordView`]: samples keep
/// their LBR stack as a raw slice of `p`, everything else delegates to
/// [`decode_payload`].
///
/// The validation verdict is pinned identical to [`decode_payload`] —
/// same `Ok(Some)`/`Ok(None)`/`Err` for every `(rtype, payload)` — which
/// is what lets the stream decoder's resync scan use either
/// interchangeably (see `view_decode_agrees_with_owned_decode` below).
pub(crate) fn decode_view<'b>(rtype: u8, p: &'b [u8]) -> Result<Option<RecordView<'b>>, ()> {
    if rtype != T_SAMPLE {
        return Ok(decode_payload(rtype, p)?.map(RecordView::Other));
    }
    // Fixed sample header: counter u8, kind u8, precise u8, ip u64,
    // time u64, pid u32, tid u32, ring u8, lbr_count u16.
    const FIXED: usize = 3 + 8 + 8 + 4 + 4 + 1 + 2;
    if p.len() < FIXED {
        return Err(());
    }
    let counter = p[0];
    let kind = *EventKind::ALL.get(p[1] as usize).ok_or(())?;
    let precise = p[2] != 0;
    let ip = u64::from_le_bytes(p[3..11].try_into().expect("8 bytes"));
    let time_cycles = u64::from_le_bytes(p[11..19].try_into().expect("8 bytes"));
    let pid = u32::from_le_bytes(p[19..23].try_into().expect("4 bytes"));
    let tid = u32::from_le_bytes(p[23..27].try_into().expect("4 bytes"));
    let ring = ring_from_code(p[27]).ok_or(())?;
    let n = u16::from_le_bytes(p[28..30].try_into().expect("2 bytes")) as usize;
    let lbr_bytes = &p[FIXED..];
    // Exact consumption, like decode_payload: a declared length that does
    // not match `n` entries is corrupt (and rejects false resync anchors).
    if lbr_bytes.len() != n * 16 {
        return Err(());
    }
    Ok(Some(RecordView::Sample(SampleView {
        counter,
        event: EventSpec { kind, precise },
        ip,
        time_cycles,
        pid,
        tid,
        ring,
        lbr_bytes,
    })))
}

fn ring_code(ring: Ring) -> u8 {
    match ring {
        Ring::User => 0,
        Ring::Kernel => 1,
    }
}

fn ring_from_code(code: u8) -> Option<Ring> {
    match code {
        0 => Some(Ring::User),
        1 => Some(Ring::Kernel),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> PerfData {
        let mut d = PerfData::new();
        d.push(PerfRecord::Comm {
            pid: 100,
            tid: 100,
            name: "povray".into(),
        });
        d.push(PerfRecord::Mmap {
            pid: 100,
            addr: 0x400000,
            len: 0x2000,
            filename: "povray.bin".into(),
            ring: Ring::User,
        });
        d.push(PerfRecord::Mmap {
            pid: 0,
            addr: 0xFFFF_FFFF_8100_0000,
            len: 0x1000,
            filename: "vmlinux".into(),
            ring: Ring::Kernel,
        });
        d.push(PerfRecord::Fork {
            parent_pid: 100,
            child_pid: 101,
            time_cycles: 5,
        });
        d.push(PerfRecord::Sample(PerfSample {
            counter: 1,
            event: EventSpec::br_inst_retired_near_taken(),
            ip: 0x400123,
            time_cycles: 999,
            pid: 100,
            tid: 100,
            ring: Ring::User,
            lbr: vec![
                LbrEntry {
                    from: 0x400100,
                    to: 0x400050,
                },
                LbrEntry {
                    from: 0x400080,
                    to: 0x400100,
                },
            ],
        }));
        d.push(PerfRecord::Lost { count: 7 });
        d.push(PerfRecord::Exit {
            pid: 100,
            time_cycles: 12345,
        });
        d
    }

    #[test]
    fn roundtrip() {
        let data = sample_data();
        let bytes = write(&data);
        let back = read(&bytes).expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(read(b"NOTPERF!"), Err(ReadError::BadMagic));
        assert_eq!(read(b""), Err(ReadError::BadMagic));
    }

    #[test]
    fn stream_encoder_is_byte_identical_to_batch_writer() {
        let data = sample_data();
        let mut enc = StreamEncoder::new(Vec::new()).expect("header");
        for record in data.records() {
            enc.write_record(record).expect("frame");
        }
        assert_eq!(enc.records_written(), data.len() as u64);
        let bytes = enc.finish().expect("finish");
        assert_eq!(bytes, write(&data).to_vec());
    }

    #[test]
    fn stream_encoder_sink_errors_are_sticky_and_surface_at_finish() {
        /// Writer that accepts the header, then fails every write.
        #[derive(Debug)]
        struct Failing {
            budget: usize,
        }
        impl std::io::Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget >= buf.len() {
                    self.budget -= buf.len();
                    Ok(buf.len())
                } else {
                    Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "down"))
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut enc = StreamEncoder::new(Failing { budget: HEADER_LEN }).expect("header fits");
        {
            let sink: &mut dyn crate::RecordSink = &mut enc;
            sink.record(PerfRecord::Lost { count: 1 });
            sink.record(PerfRecord::Lost { count: 2 });
        }
        assert_eq!(enc.records_written(), 0);
        let err = enc.finish().expect_err("sticky error");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = write(&sample_data()).to_vec();
        bytes[8] = 99;
        assert_eq!(read(&bytes), Err(ReadError::BadVersion { found: 99 }));
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let bytes = write(&sample_data()).to_vec();
        // Any cut strictly inside the stream (past the header) must yield
        // Truncated or a valid prefix — never a panic.
        for cut in 12..bytes.len() {
            match read(&bytes[..cut]) {
                Ok(_) | Err(ReadError::Truncated) => {}
                other => panic!("cut={cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_record_types_skipped() {
        let mut bytes = write(&sample_data()).to_vec();
        // Append an unknown record: type 200, 3-byte payload.
        bytes.push(200);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let back = read(&bytes).expect("unknown type skipped");
        assert_eq!(back.len(), sample_data().len());
    }

    #[test]
    fn view_decode_agrees_with_owned_decode() {
        // Every frame of the fixture, plus mutated payloads (truncated,
        // padded, bad kind index, bad ring code), must get the identical
        // verdict from decode_payload and decode_view.
        let data = sample_data();
        let mut frames: Vec<(u8, Vec<u8>)> = data
            .records()
            .iter()
            .map(|r| (record_type(r), encode_payload(r).to_vec()))
            .collect();
        let sample_payload = frames
            .iter()
            .find(|(t, _)| *t == T_SAMPLE)
            .expect("fixture has a sample")
            .1
            .clone();
        for cut in 0..sample_payload.len() {
            frames.push((T_SAMPLE, sample_payload[..cut].to_vec()));
        }
        let mut padded = sample_payload.clone();
        padded.push(0);
        frames.push((T_SAMPLE, padded));
        let mut bad_kind = sample_payload.clone();
        bad_kind[1] = 200;
        frames.push((T_SAMPLE, bad_kind));
        let mut bad_ring = sample_payload.clone();
        bad_ring[27] = 9;
        frames.push((T_SAMPLE, bad_ring));
        frames.push((200, vec![1, 2, 3]));
        for (rtype, payload) in frames {
            let owned = decode_payload(rtype, &payload);
            let view = decode_view(rtype, &payload);
            match (owned, view) {
                (Ok(Some(r)), Ok(Some(v))) => {
                    assert_eq!(v.into_owned(), r, "type {rtype}");
                }
                (Ok(None), Ok(None)) | (Err(()), Err(())) => {}
                (o, v) => panic!("type {rtype}: owned {o:?} vs view {v:?}"),
            }
        }
    }

    #[test]
    fn corrupt_sample_detected() {
        let mut d = PerfData::new();
        d.push(PerfRecord::Lost { count: 1 });
        let mut bytes = write(&d).to_vec();
        // Rewrite the record type to SAMPLE with a lost-payload (too short).
        let header = MAGIC.len() + 4;
        bytes[header] = T_SAMPLE;
        assert_eq!(
            read(&bytes),
            Err(ReadError::Corrupt {
                record_type: T_SAMPLE
            })
        );
    }
}

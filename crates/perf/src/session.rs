//! A collection session: program the PMU, run the workload, produce a
//! perf data file.
//!
//! Reproduces the collector of paper §V.A: "We program two counters to
//! collect LBR simultaneously — one sampling on an 'Instructions Retired'
//! event and another on a 'Branches Taken' event. … the workload needs to
//! be run only once, the performance impact of the collection remains low,
//! and the output file contains the required two types of data."

use crate::{PerfData, PerfRecord, PerfSample};
use hbbp_program::{ExecutionOracle, Layout, Program};
use hbbp_sim::{Cpu, PmuConfig, PmuError, RunResult};

/// A configured collection session.
#[derive(Debug, Clone)]
pub struct PerfSession {
    /// The machine to run on.
    pub cpu: Cpu,
    /// PMU programming for the session.
    pub pmu: PmuConfig,
    /// Pid recorded in the stream.
    pub pid: u32,
}

/// Everything one recording produces: the perf data file plus the run's
/// timing/counting facts (used for overhead accounting and PMU
/// cross-checks).
#[derive(Debug, Clone)]
pub struct Recording {
    /// The perf.data-equivalent stream.
    pub data: PerfData,
    /// Raw run results (cycles, counts, overhead).
    pub run: RunResult,
}

impl PerfSession {
    /// Session with the paper's dual-LBR HBBP collector.
    pub fn hbbp(cpu: Cpu, ebs_period: u64, lbr_period: u64) -> PerfSession {
        PerfSession {
            cpu,
            pmu: PmuConfig::hbbp_collector(ebs_period, lbr_period),
            pid: 1000,
        }
    }

    /// Run the workload once and capture a perf data stream.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError`] if the PMU programming is invalid.
    pub fn record<O: ExecutionOracle>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
    ) -> Result<Recording, PmuError> {
        let run = self.cpu.run(program, layout, oracle, &self.pmu)?;
        let mut data = PerfData::new();
        data.push(PerfRecord::Comm {
            pid: self.pid,
            tid: self.pid,
            name: program.name().to_owned(),
        });
        for module in program.modules() {
            let (base, end) = layout.module_range(module.id());
            data.push(PerfRecord::Mmap {
                pid: match module.ring() {
                    hbbp_program::Ring::User => self.pid,
                    hbbp_program::Ring::Kernel => 0,
                },
                addr: base,
                len: end - base,
                filename: module.name().to_owned(),
                ring: module.ring(),
            });
        }
        for s in &run.samples {
            data.push(PerfRecord::Sample(PerfSample {
                counter: s.counter,
                event: s.event,
                ip: s.ip,
                time_cycles: s.time_cycles,
                pid: self.pid,
                tid: s.tid,
                ring: s.ring,
                lbr: s.lbr.clone().unwrap_or_default(),
            }));
        }
        if run.throttled > 0 {
            data.push(PerfRecord::Lost {
                count: run.throttled,
            });
        }
        data.push(PerfRecord::Exit {
            pid: self.pid,
            time_cycles: run.cycles,
        });
        Ok(Recording { data, run })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_program::{ProgramBuilder, Ring, TripCountOracle};
    use hbbp_sim::EventSpec;

    fn loop_program() -> (Program, Layout, hbbp_program::BlockId) {
        let mut b = ProgramBuilder::new("sess");
        let m = b.module("sess.bin", Ring::User);
        let f = b.function(m, "main");
        let head = b.block(f);
        let exit = b.block(f);
        for i in 0..8 {
            b.push(head, rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(9)));
        }
        b.terminate_branch(head, Mnemonic::Jnz, head, exit);
        b.terminate_exit(exit, bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout, head)
    }

    #[test]
    fn recording_contains_both_event_streams() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(1), 1009, 211);
        let oracle = TripCountOracle::new(1).with_trips(head, 50_000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        let ebs = rec
            .data
            .samples_of(EventSpec::inst_retired_prec_dist())
            .count();
        let lbr = rec
            .data
            .samples_of(EventSpec::br_inst_retired_near_taken())
            .count();
        assert!(ebs > 100, "ebs samples: {ebs}");
        assert!(lbr > 50, "lbr samples: {lbr}");
        // Both streams carry LBR stacks (that is the trick of §V.A).
        assert!(rec.data.samples().all(|s| !s.lbr.is_empty()));
    }

    #[test]
    fn recording_has_comm_mmap_exit() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(1), 100_003, 10_007);
        let oracle = TripCountOracle::new(1).with_trips(head, 1000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        assert_eq!(rec.data.mmaps().count(), 1);
        let tags: Vec<_> = rec.data.records().iter().map(|r| r.tag()).collect();
        assert_eq!(tags.first(), Some(&"COMM"));
        assert_eq!(tags.last(), Some(&"EXIT"));
    }

    #[test]
    fn recording_roundtrips_through_codec() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(2), 2003, 401);
        let oracle = TripCountOracle::new(1).with_trips(head, 20_000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        let bytes = crate::codec::write(&rec.data);
        let back = crate::codec::read(&bytes).unwrap();
        assert_eq!(back, rec.data);
    }
}

//! A collection session: program the PMU, run the workload, produce a
//! perf data file.
//!
//! Reproduces the collector of paper §V.A: "We program two counters to
//! collect LBR simultaneously — one sampling on an 'Instructions Retired'
//! event and another on a 'Branches Taken' event. … the workload needs to
//! be run only once, the performance impact of the collection remains low,
//! and the output file contains the required two types of data."

use crate::codec::StreamEncoder;
use crate::{PerfData, PerfRecord, PerfSample};
use hbbp_program::{ExecutionOracle, Layout, Program};
use hbbp_sim::{Cpu, PmuConfig, PmuError, RunResult};
use std::fmt;

/// Errors from a collection session that encodes onto a writer
/// ([`PerfSession::record_to_sink`]).
#[derive(Debug)]
pub enum RecordError {
    /// The PMU programming was invalid.
    Pmu(PmuError),
    /// Encoding onto the writer failed (e.g. the peer closed a socket).
    Io(std::io::Error),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Pmu(e) => write!(f, "PMU programming error: {e}"),
            RecordError::Io(e) => write!(f, "perf stream write failed: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<PmuError> for RecordError {
    fn from(e: PmuError) -> RecordError {
        RecordError::Pmu(e)
    }
}

impl From<std::io::Error> for RecordError {
    fn from(e: std::io::Error) -> RecordError {
        RecordError::Io(e)
    }
}

/// A configured collection session.
#[derive(Debug, Clone)]
pub struct PerfSession {
    /// The machine to run on.
    pub cpu: Cpu,
    /// PMU programming for the session.
    pub pmu: PmuConfig,
    /// Pid recorded in the stream.
    pub pid: u32,
}

/// Consumer of a perf record stream.
///
/// [`PerfSession::record_streaming`] pushes records into a sink as they
/// are produced instead of materializing a [`PerfData`]; any online
/// consumer (a windowed analyzer, an encoder writing to a socket, a
/// filter) implements this one method.
pub trait RecordSink {
    /// Accept the next record of the stream.
    fn record(&mut self, record: PerfRecord);
}

impl RecordSink for PerfData {
    fn record(&mut self, record: PerfRecord) {
        self.push(record);
    }
}

impl RecordSink for Vec<PerfRecord> {
    fn record(&mut self, record: PerfRecord) {
        self.push(record);
    }
}

/// Everything one recording produces: the perf data file plus the run's
/// timing/counting facts (used for overhead accounting and PMU
/// cross-checks).
#[derive(Debug, Clone)]
pub struct Recording {
    /// The perf.data-equivalent stream.
    pub data: PerfData,
    /// Raw run results (cycles, counts, overhead).
    pub run: RunResult,
}

impl PerfSession {
    /// Session with the paper's dual-LBR HBBP collector and the default
    /// pid of 1000 (override with [`PerfSession::with_pid`]).
    pub fn hbbp(cpu: Cpu, ebs_period: u64, lbr_period: u64) -> PerfSession {
        PerfSession {
            cpu,
            pmu: PmuConfig::hbbp_collector(ebs_period, lbr_period),
            pid: 1000,
        }
    }

    /// Record under a specific pid. Every record of the stream — COMM,
    /// user MMAPs, samples, EXIT — carries it.
    pub fn with_pid(mut self, pid: u32) -> PerfSession {
        self.pid = pid;
        self
    }

    /// Run the workload once and capture a perf data stream.
    ///
    /// Equivalent to [`PerfSession::record_streaming`] with a [`PerfData`]
    /// sink; the materialized records are identical.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError`] if the PMU programming is invalid.
    pub fn record<O: ExecutionOracle>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
    ) -> Result<Recording, PmuError> {
        let mut data = PerfData::new();
        let run = self.record_streaming(program, layout, oracle, &mut data)?;
        Ok(Recording { data, run })
    }

    /// Run the workload once, pushing each record into `sink` as it is
    /// produced instead of materializing a [`PerfData`]. This is the
    /// bounded-memory collection path: an online consumer (e.g. a
    /// windowed analyzer) never holds the whole stream.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError`] if the PMU programming is invalid.
    pub fn record_streaming<O: ExecutionOracle, S: RecordSink + ?Sized>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
        sink: &mut S,
    ) -> Result<RunResult, PmuError> {
        // A session records one single-threaded process: when the machine
        // was left at its default tid of 0, stamp samples with the session
        // pid so sample tids agree with the COMM record.
        let mut cpu = self.cpu.clone();
        if cpu.tid == 0 {
            cpu.tid = self.pid;
        }
        let run = cpu.run(program, layout, oracle, &self.pmu)?;
        sink.record(PerfRecord::Comm {
            pid: self.pid,
            tid: self.pid,
            name: program.name().to_owned(),
        });
        for module in program.modules() {
            let (base, end) = layout.module_range(module.id());
            sink.record(PerfRecord::Mmap {
                pid: match module.ring() {
                    hbbp_program::Ring::User => self.pid,
                    hbbp_program::Ring::Kernel => 0,
                },
                addr: base,
                len: end - base,
                filename: module.name().to_owned(),
                ring: module.ring(),
            });
        }
        for s in &run.samples {
            sink.record(PerfRecord::Sample(PerfSample {
                counter: s.counter,
                event: s.event,
                ip: s.ip,
                time_cycles: s.time_cycles,
                pid: self.pid,
                tid: s.tid,
                ring: s.ring,
                lbr: s.lbr.clone().unwrap_or_default(),
            }));
        }
        if run.throttled > 0 {
            sink.record(PerfRecord::Lost {
                count: run.throttled,
            });
        }
        sink.record(PerfRecord::Exit {
            pid: self.pid,
            time_cycles: run.cycles,
        });
        Ok(run)
    }

    /// Run the workload once, encoding the record stream onto `writer` in
    /// the binary perf format as it is produced — the wire-facing
    /// collection path: hand it a `TcpStream` and the recording streams
    /// to a collection daemon without ever materializing in memory.
    ///
    /// The bytes written are identical to
    /// `codec::write(&self.record(..)?.data)`.
    ///
    /// # Errors
    ///
    /// Returns [`RecordError::Pmu`] for invalid PMU programming and
    /// [`RecordError::Io`] when any write (header, frame, or final flush)
    /// fails.
    pub fn record_to_sink<O: ExecutionOracle, W: std::io::Write>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
        writer: W,
    ) -> Result<(RunResult, W), RecordError> {
        let mut encoder = StreamEncoder::new(writer)?;
        let run = self.record_streaming(program, layout, oracle, &mut encoder)?;
        let writer = encoder.finish()?;
        Ok((run, writer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::{Mnemonic, Reg};
    use hbbp_program::{ProgramBuilder, Ring, TripCountOracle};
    use hbbp_sim::EventSpec;

    fn loop_program() -> (Program, Layout, hbbp_program::BlockId) {
        let mut b = ProgramBuilder::new("sess");
        let m = b.module("sess.bin", Ring::User);
        let f = b.function(m, "main");
        let head = b.block(f);
        let exit = b.block(f);
        for i in 0..8 {
            b.push(head, rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(9)));
        }
        b.terminate_branch(head, Mnemonic::Jnz, head, exit);
        b.terminate_exit(exit, bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout, head)
    }

    #[test]
    fn recording_contains_both_event_streams() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(1), 1009, 211);
        let oracle = TripCountOracle::new(1).with_trips(head, 50_000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        let ebs = rec
            .data
            .samples_of(EventSpec::inst_retired_prec_dist())
            .count();
        let lbr = rec
            .data
            .samples_of(EventSpec::br_inst_retired_near_taken())
            .count();
        assert!(ebs > 100, "ebs samples: {ebs}");
        assert!(lbr > 50, "lbr samples: {lbr}");
        // Both streams carry LBR stacks (that is the trick of §V.A).
        assert!(rec.data.samples().all(|s| !s.lbr.is_empty()));
    }

    #[test]
    fn recording_has_comm_mmap_exit() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(1), 100_003, 10_007);
        let oracle = TripCountOracle::new(1).with_trips(head, 1000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        assert_eq!(rec.data.mmaps().count(), 1);
        let tags: Vec<_> = rec.data.records().iter().map(|r| r.tag()).collect();
        assert_eq!(tags.first(), Some(&"COMM"));
        assert_eq!(tags.last(), Some(&"EXIT"));
    }

    #[test]
    fn streaming_sink_sees_exactly_the_batch_records() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(3), 1009, 211);
        let oracle = TripCountOracle::new(1).with_trips(head, 20_000);
        let rec = session.record(&p, &layout, oracle.clone()).unwrap();
        let mut sunk: Vec<PerfRecord> = Vec::new();
        let run = session
            .record_streaming(&p, &layout, oracle, &mut sunk)
            .unwrap();
        assert_eq!(sunk, rec.data.records());
        assert_eq!(run.cycles, rec.run.cycles);
        assert_eq!(run.samples.len(), rec.run.samples.len());
    }

    #[test]
    fn pid_is_configurable_and_consistent_across_records() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(4), 1009, 211).with_pid(4242);
        let oracle = TripCountOracle::new(1).with_trips(head, 10_000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        for record in rec.data.records() {
            match record {
                PerfRecord::Comm { pid, tid, .. } => {
                    assert_eq!((*pid, *tid), (4242, 4242));
                }
                PerfRecord::Mmap { pid, ring, .. } => {
                    let expect = if *ring == hbbp_program::Ring::Kernel {
                        0
                    } else {
                        4242
                    };
                    assert_eq!(*pid, expect);
                }
                PerfRecord::Sample(s) => {
                    assert_eq!(s.pid, 4242);
                    // Single-threaded process: sample tid follows the pid
                    // (unless the Cpu sets an explicit tid).
                    assert_eq!(s.tid, 4242);
                }
                PerfRecord::Exit { pid, .. } => assert_eq!(*pid, 4242),
                PerfRecord::Fork { .. } | PerfRecord::Lost { .. } => {}
            }
        }
    }

    #[test]
    fn explicit_cpu_tid_wins_over_pid_stamping() {
        let (p, layout, head) = loop_program();
        let mut cpu = Cpu::with_seed(5);
        cpu.tid = 77;
        let session = PerfSession::hbbp(cpu, 1009, 211).with_pid(4242);
        let oracle = TripCountOracle::new(1).with_trips(head, 10_000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        assert!(rec.data.samples().all(|s| s.tid == 77 && s.pid == 4242));
    }

    #[test]
    fn record_to_sink_writes_the_batch_encoding() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(6), 1009, 211);
        let oracle = TripCountOracle::new(1).with_trips(head, 20_000);
        let rec = session.record(&p, &layout, oracle.clone()).unwrap();
        let (run, bytes) = session
            .record_to_sink(&p, &layout, oracle, Vec::new())
            .unwrap();
        assert_eq!(run.cycles, rec.run.cycles);
        assert_eq!(bytes, crate::codec::write(&rec.data).to_vec());
        assert_eq!(crate::codec::read(&bytes).unwrap(), rec.data);
    }

    #[test]
    fn recording_roundtrips_through_codec() {
        let (p, layout, head) = loop_program();
        let session = PerfSession::hbbp(Cpu::with_seed(2), 2003, 401);
        let oracle = TripCountOracle::new(1).with_trips(head, 20_000);
        let rec = session.record(&p, &layout, oracle).unwrap();
        let bytes = crate::codec::write(&rec.data);
        let back = crate::codec::read(&bytes).unwrap();
        assert_eq!(back, rec.data);
    }
}

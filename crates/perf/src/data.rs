//! The in-memory perf data file.

use crate::{PerfRecord, PerfSample};
use hbbp_sim::EventSpec;

/// An ordered collection of perf records — the contents of one collection
/// run's "perf.data" file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfData {
    records: Vec<PerfRecord>,
}

impl PerfData {
    /// Empty file.
    pub fn new() -> PerfData {
        PerfData::default()
    }

    /// Append a record.
    pub fn push(&mut self, record: PerfRecord) {
        self.records.push(record);
    }

    /// All records in order.
    pub fn records(&self) -> &[PerfRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate all samples.
    pub fn samples(&self) -> impl Iterator<Item = &PerfSample> {
        self.records.iter().filter_map(|r| match r {
            PerfRecord::Sample(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate samples of one event — how the analyzer separates its EBS
    /// data source from its LBR data source (§V.A of the paper).
    pub fn samples_of(&self, event: EventSpec) -> impl Iterator<Item = &PerfSample> {
        self.samples().filter(move |s| s.event == event)
    }

    /// Total lost-sample count recorded in the stream.
    pub fn lost(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                PerfRecord::Lost { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Memory-map records (module name, base, length).
    pub fn mmaps(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.records.iter().filter_map(|r| match r {
            PerfRecord::Mmap {
                filename,
                addr,
                len,
                ..
            } => Some((filename.as_str(), *addr, *len)),
            _ => None,
        })
    }
}

impl FromIterator<PerfRecord> for PerfData {
    fn from_iter<T: IntoIterator<Item = PerfRecord>>(iter: T) -> PerfData {
        PerfData {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<PerfRecord> for PerfData {
    fn extend<T: IntoIterator<Item = PerfRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_program::Ring;

    fn sample(event: EventSpec, ip: u64) -> PerfRecord {
        PerfRecord::Sample(PerfSample {
            counter: 0,
            event,
            ip,
            time_cycles: 0,
            pid: 1,
            tid: 1,
            ring: Ring::User,
            lbr: vec![],
        })
    }

    #[test]
    fn filters_by_event() {
        let ebs = EventSpec::inst_retired_prec_dist();
        let lbr = EventSpec::br_inst_retired_near_taken();
        let data: PerfData = vec![
            sample(ebs, 1),
            sample(lbr, 2),
            sample(ebs, 3),
            PerfRecord::Lost { count: 5 },
        ]
        .into_iter()
        .collect();
        assert_eq!(data.samples().count(), 3);
        assert_eq!(data.samples_of(ebs).count(), 2);
        assert_eq!(data.samples_of(lbr).count(), 1);
        assert_eq!(data.lost(), 5);
    }

    #[test]
    fn mmap_iteration() {
        let mut data = PerfData::new();
        data.push(PerfRecord::Mmap {
            pid: 1,
            addr: 0x400000,
            len: 0x1000,
            filename: "a.out".into(),
            ring: Ring::User,
        });
        let maps: Vec<_> = data.mmaps().collect();
        assert_eq!(maps, vec![("a.out", 0x400000, 0x1000)]);
    }
}

//! Incremental decoding of perf data streams.
//!
//! [`codec::read`](crate::codec::read) needs the whole file in memory;
//! [`StreamDecoder`] decodes the same format from byte chunks of arbitrary
//! size as they arrive — from a socket, a pipe, or a file tailed while the
//! collector is still writing. Partial records carry over between chunks,
//! the internal buffer stays bounded by the largest partial record plus a
//! compaction threshold (consumed bytes are dropped lazily, not memmoved
//! on every chunk), and (in resilient mode) a corrupt region is skipped by
//! resynchronizing on the next plausible record frame.
//!
//! Records can be drained owned ([`next_record`](StreamDecoder::next_record)),
//! as zero-copy views borrowing the buffer
//! ([`next_view`](StreamDecoder::next_view)), or pushed into a
//! [`ViewSink`] en masse ([`decode_into`](StreamDecoder::decode_into)) —
//! the fused fast path that hoists state dispatch out of the frame loop.
//!
//! Decode semantics are shared with the batch reader (both dispatch into
//! the same frame parser), and the property suite in
//! `crates/perf/tests/stream_props.rs` pins them equal: feeding a valid
//! encoded file through any chunking yields exactly the records
//! [`codec::read`](crate::codec::read) produces, and a truncated tail
//! fails with the same [`ReadError`].
//!
//! ```
//! use hbbp_perf::{codec, PerfData, PerfRecord, StreamDecoder};
//!
//! let mut data = PerfData::new();
//! data.push(PerfRecord::Lost { count: 3 });
//! let bytes = codec::write(&data);
//!
//! let mut decoder = StreamDecoder::new();
//! let mut back = PerfData::new();
//! for chunk in bytes.chunks(5) {
//!     decoder.feed(chunk);
//!     while let Some(record) = decoder.next_record().unwrap() {
//!         back.push(record);
//!     }
//! }
//! decoder.finish().unwrap();
//! assert_eq!(back, data);
//! ```

use crate::codec::{self, ReadError};
use crate::view::{RecordView, ViewSink};
use crate::PerfRecord;

/// Frames longer than this are treated as corruption in resilient mode
/// (the largest legal payload — a sample with a full 65,535-entry LBR
/// stack — is just over 1 MiB).
const MAX_RESILIENT_PAYLOAD: usize = 2 << 20;

/// A consumed prefix at least this large is always compacted away on the
/// next [`StreamDecoder::feed`], even if it is less than half the buffer.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Decoder progress counters, returned by [`StreamDecoder::finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Records decoded and yielded.
    pub records: u64,
    /// Frames of unknown record type skipped (forward compatibility).
    pub unknown_skipped: u64,
    /// Corrupt frames skipped (resilient mode only; strict mode fails).
    pub corrupt_skipped: u64,
    /// Bytes discarded while hunting for the next frame after corruption
    /// (resilient mode only).
    pub resync_bytes: u64,
    /// Unconsumed tail bytes dropped at [`finish`](StreamDecoder::finish)
    /// (resilient mode only; strict mode fails with `Truncated`).
    pub dropped_tail_bytes: u64,
    /// Buffer compactions performed (consumed-prefix memmoves in
    /// [`feed`](StreamDecoder::feed); cheap `clear`s of a fully consumed
    /// buffer are not counted).
    pub compactions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Identical verdicts to the batch reader: corrupt or truncated input
    /// is an error.
    Strict,
    /// Keep decoding past damage: skip corrupt frames, resync on absurd
    /// frame lengths, drop a truncated tail. For tailing live files.
    Resilient,
}

#[derive(Debug, Clone)]
enum State {
    /// Waiting for the 12-byte magic + version header.
    Header,
    /// Framed records.
    Records,
    /// A fatal error was diagnosed; it is returned on every further call.
    Failed(ReadError),
}

/// Incremental perf-stream decoder: [`feed`](StreamDecoder::feed) byte
/// chunks, drain records with [`next_record`](StreamDecoder::next_record),
/// then [`finish`](StreamDecoder::finish) to validate end-of-stream.
#[derive(Debug, Clone)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted away on the next feed).
    pos: usize,
    state: State,
    mode: Mode,
    /// Frame boundaries were lost to corruption (resilient mode): only a
    /// frame that fully decodes re-anchors the scan.
    resyncing: bool,
    stats: StreamStats,
}

impl Default for StreamDecoder {
    fn default() -> StreamDecoder {
        StreamDecoder::new()
    }
}

impl StreamDecoder {
    /// A strict decoder: same verdicts as [`codec::read`], incrementally.
    pub fn new() -> StreamDecoder {
        StreamDecoder {
            buf: Vec::new(),
            pos: 0,
            state: State::Header,
            mode: Mode::Strict,
            resyncing: false,
            stats: StreamStats::default(),
        }
    }

    /// A resilient decoder: recovers from mid-stream corruption by
    /// scanning forward one byte at a time until a frame of a known type
    /// fully decodes again. The damaged frame's length prefix is **not**
    /// trusted to delimit it (it may itself be the corrupted bytes — a
    /// plausible-but-wrong length would swallow valid frames), so when the
    /// length was in fact honest the scan simply slides through the
    /// corrupt payload to the next frame. The header must still be valid —
    /// a stream that is not a perf stream at all is an error, not
    /// something to scan through.
    pub fn resilient() -> StreamDecoder {
        StreamDecoder {
            mode: Mode::Resilient,
            ..StreamDecoder::new()
        }
    }

    /// Append a chunk of stream bytes.
    ///
    /// The consumed prefix of the internal buffer is compacted away only
    /// when it is worth the memmove — when everything buffered has been
    /// consumed (a free `clear`), or the prefix reaches the compaction
    /// threshold (64 KiB) or half the buffer. Amortized over a stream,
    /// each byte is moved at most once, and the buffer stays bounded by
    /// the largest partial record plus the threshold — independent of
    /// total stream length.
    ///
    /// Compaction moves bytes, so it only happens here, between decode
    /// calls — never while a [`RecordView`] borrows the buffer (the
    /// borrow checker enforces that ordering).
    pub fn feed(&mut self, chunk: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos == 0 {
            return;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD || self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
            self.stats.compactions += 1;
        }
    }

    /// The running progress counters, readable mid-stream (e.g. to
    /// harvest partial stats from a stream that will never reach
    /// [`finish`](StreamDecoder::finish) cleanly). `dropped_tail_bytes`
    /// is only settled by `finish`.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    fn fail(&mut self, error: ReadError) -> ReadError {
        self.state = State::Failed(error.clone());
        error
    }

    /// Decode the next complete record from the buffered bytes, owned.
    ///
    /// Equivalent to [`next_view`](StreamDecoder::next_view) followed by
    /// [`RecordView::into_owned`]; both run the same state machine.
    ///
    /// Returns `Ok(None)` when more bytes are needed (call
    /// [`feed`](StreamDecoder::feed) and retry).
    ///
    /// # Errors
    ///
    /// Returns the same [`ReadError`] verdicts as [`codec::read`]: a bad
    /// magic/version is always fatal; a corrupt frame is fatal in strict
    /// mode and skipped in resilient mode. Once an error is returned, the
    /// decoder is poisoned and repeats it.
    pub fn next_record(&mut self) -> Result<Option<PerfRecord>, ReadError> {
        Ok(self.next_view()?.map(RecordView::into_owned))
    }

    /// Decode the next complete record as a zero-copy [`RecordView`]
    /// borrowing the internal buffer.
    ///
    /// The view is valid until the next call on this decoder; convert
    /// with [`RecordView::into_owned`] to keep it. Returns `Ok(None)`
    /// when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Identical verdicts to [`next_record`](StreamDecoder::next_record).
    pub fn next_view(&mut self) -> Result<Option<RecordView<'_>>, ReadError> {
        loop {
            match &self.state {
                State::Failed(e) => return Err(e.clone()),
                State::Header => {
                    let avail = &self.buf[self.pos..];
                    // Reject a wrong magic as soon as the prefix diverges;
                    // a partial-but-matching prefix waits for more bytes.
                    let n = avail.len().min(codec::MAGIC.len());
                    if avail[..n] != codec::MAGIC[..n] {
                        // `self.fail` borrows all of self, which the
                        // borrow checker rejects in a view-returning loop;
                        // poison the state field directly instead.
                        let e = ReadError::BadMagic;
                        self.state = State::Failed(e.clone());
                        return Err(e);
                    }
                    if avail.len() < codec::HEADER_LEN {
                        return Ok(None);
                    }
                    let version = u32::from_le_bytes(
                        avail[codec::MAGIC.len()..codec::HEADER_LEN]
                            .try_into()
                            .expect("4 header bytes"),
                    );
                    if version != codec::VERSION {
                        let e = ReadError::BadVersion { found: version };
                        self.state = State::Failed(e.clone());
                        return Err(e);
                    }
                    self.pos += codec::HEADER_LEN;
                    self.state = State::Records;
                }
                State::Records => {
                    let avail = &self.buf[self.pos..];
                    if avail.len() < 5 {
                        return Ok(None);
                    }
                    let rtype = avail[0];
                    let len = u32::from_le_bytes(avail[1..5].try_into().expect("4 length bytes"))
                        as usize;
                    if self.resyncing {
                        // Frame boundaries are lost: candidate bytes only
                        // re-anchor the scan when they look like a frame
                        // of a known type AND its payload decodes. Anything
                        // less slides the scan window by one byte.
                        if !codec::is_known_type(rtype) || len > MAX_RESILIENT_PAYLOAD {
                            self.pos += 1;
                            self.stats.resync_bytes += 1;
                            continue;
                        }
                        if avail.len() < 5 + len {
                            return Ok(None);
                        }
                        match codec::decode_view(rtype, &avail[5..5 + len]) {
                            Ok(Some(view)) => {
                                self.pos += 5 + len;
                                self.resyncing = false;
                                self.stats.records += 1;
                                return Ok(Some(view));
                            }
                            _ => {
                                self.pos += 1;
                                self.stats.resync_bytes += 1;
                            }
                        }
                        continue;
                    }
                    if self.mode == Mode::Resilient && len > MAX_RESILIENT_PAYLOAD {
                        // The length prefix itself is garbage: the frame
                        // boundary is lost, start hunting for the next
                        // decodable frame.
                        self.pos += 1;
                        self.resyncing = true;
                        self.stats.resync_bytes += 1;
                        continue;
                    }
                    if avail.len() < 5 + len {
                        return Ok(None);
                    }
                    let payload = &avail[5..5 + len];
                    match codec::decode_view(rtype, payload) {
                        Ok(Some(view)) => {
                            self.pos += 5 + len;
                            self.stats.records += 1;
                            return Ok(Some(view));
                        }
                        Ok(None) => {
                            self.pos += 5 + len;
                            self.stats.unknown_skipped += 1;
                        }
                        Err(()) => {
                            if self.mode == Mode::Strict {
                                let e = ReadError::Corrupt { record_type: rtype };
                                self.state = State::Failed(e.clone());
                                return Err(e);
                            }
                            // A failed decode means either the payload or
                            // the length prefix is damaged — the length
                            // cannot be trusted to delimit the frame, so
                            // hunt for the next decodable frame instead of
                            // skipping blind (a corrupted length would
                            // swallow valid frames). When the length WAS
                            // honest, the scan slides through the corrupt
                            // payload and lands on the next frame anyway.
                            self.pos += 1;
                            self.resyncing = true;
                            self.stats.corrupt_skipped += 1;
                        }
                    }
                }
            }
        }
    }

    /// Drain every complete record in the buffer into `sink` as zero-copy
    /// views, returning how many records were delivered.
    ///
    /// This is the fused fast path: while the decoder sits in the plain
    /// record-framing state, a tight inner loop scans `type | len`
    /// headers and decodes views with the per-record state-machine
    /// dispatch, resync checks, and poison checks hoisted out. Edge
    /// states (stream header, resilient resync, oversized resilient
    /// frames) fall back to [`next_view`](StreamDecoder::next_view) —
    /// the two paths share the frame parser and are pinned equivalent by
    /// the property suite.
    ///
    /// Returns when the buffer holds no complete frame; feed more bytes
    /// and call again.
    ///
    /// # Errors
    ///
    /// Identical verdicts to [`next_record`](StreamDecoder::next_record);
    /// records already delivered to the sink stay delivered.
    pub fn decode_into<S: ViewSink + ?Sized>(&mut self, sink: &mut S) -> Result<u64, ReadError> {
        let mut delivered = 0u64;
        loop {
            if matches!(self.state, State::Records) && !self.resyncing {
                // Fast loop: plain framing, no resync in progress.
                loop {
                    let avail = self.buf.len() - self.pos;
                    if avail < 5 {
                        return Ok(delivered);
                    }
                    let rtype = self.buf[self.pos];
                    let len = u32::from_le_bytes(
                        self.buf[self.pos + 1..self.pos + 5]
                            .try_into()
                            .expect("4 length bytes"),
                    ) as usize;
                    if self.mode == Mode::Resilient && len > MAX_RESILIENT_PAYLOAD {
                        break; // slow path starts the resync hunt
                    }
                    if avail < 5 + len {
                        return Ok(delivered);
                    }
                    let payload = &self.buf[self.pos + 5..self.pos + 5 + len];
                    match codec::decode_view(rtype, payload) {
                        Ok(Some(view)) => {
                            self.pos += 5 + len;
                            self.stats.records += 1;
                            delivered += 1;
                            sink.view(&view);
                        }
                        Ok(None) => {
                            self.pos += 5 + len;
                            self.stats.unknown_skipped += 1;
                        }
                        Err(()) => {
                            if self.mode == Mode::Strict {
                                return Err(self.fail(ReadError::Corrupt { record_type: rtype }));
                            }
                            break; // slow path starts the resync hunt
                        }
                    }
                }
            }
            match self.next_view()? {
                Some(view) => {
                    delivered += 1;
                    sink.view(&view);
                }
                None => return Ok(delivered),
            }
        }
    }

    /// Declare end-of-stream and validate what remains buffered.
    ///
    /// # Errors
    ///
    /// In strict mode, mirrors [`codec::read`] on a truncated input: an
    /// incomplete header is `BadMagic`, a partial record is `Truncated`,
    /// and a previously diagnosed fatal error is repeated. Resilient mode
    /// only repeats fatal header errors; a partial trailing record is
    /// dropped and counted in [`StreamStats::dropped_tail_bytes`]. (This
    /// is the one unrecoverable corruption shape: a length prefix
    /// corrupted to a plausible value near the end of the stream is
    /// indistinguishable from a genuine mid-record cut, so the decoder
    /// waits for bytes that never come and any valid frames inside the
    /// claimed span are dropped with the tail.)
    pub fn finish(mut self) -> Result<StreamStats, ReadError> {
        match self.state {
            State::Failed(e) => Err(e),
            State::Header => Err(ReadError::BadMagic),
            State::Records => {
                let tail = (self.buf.len() - self.pos) as u64;
                if tail == 0 {
                    return Ok(self.stats);
                }
                match self.mode {
                    Mode::Strict => Err(ReadError::Truncated),
                    Mode::Resilient => {
                        self.stats.dropped_tail_bytes = tail;
                        Ok(self.stats)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{codec, PerfData, PerfSample};
    use hbbp_program::Ring;
    use hbbp_sim::{EventSpec, LbrEntry};

    fn sample_data() -> PerfData {
        let mut d = PerfData::new();
        d.push(PerfRecord::Comm {
            pid: 7,
            tid: 7,
            name: "stream".into(),
        });
        d.push(PerfRecord::Mmap {
            pid: 7,
            addr: 0x400000,
            len: 0x1000,
            filename: "stream.bin".into(),
            ring: Ring::User,
        });
        for i in 0..5u64 {
            d.push(PerfRecord::Sample(PerfSample {
                counter: (i % 2) as u8,
                event: if i % 2 == 0 {
                    EventSpec::inst_retired_prec_dist()
                } else {
                    EventSpec::br_inst_retired_near_taken()
                },
                ip: 0x400100 + i,
                time_cycles: 100 * i,
                pid: 7,
                tid: 7,
                ring: Ring::User,
                lbr: vec![
                    LbrEntry {
                        from: 0x400120,
                        to: 0x400100
                    };
                    i as usize
                ],
            }));
        }
        d.push(PerfRecord::Exit {
            pid: 7,
            time_cycles: 999,
        });
        d
    }

    fn drain(decoder: &mut StreamDecoder) -> Vec<PerfRecord> {
        let mut out = Vec::new();
        while let Some(r) = decoder.next_record().expect("no decode error") {
            out.push(r);
        }
        out
    }

    #[test]
    fn whole_stream_in_one_chunk() {
        let data = sample_data();
        let bytes = codec::write(&data);
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        let records = drain(&mut dec);
        assert_eq!(records, data.records());
        let stats = dec.finish().unwrap();
        assert_eq!(stats.records, data.len() as u64);
    }

    #[test]
    fn byte_at_a_time_chunking() {
        let data = sample_data();
        let bytes = codec::write(&data);
        let mut dec = StreamDecoder::new();
        let mut records = Vec::new();
        for &b in bytes.iter() {
            dec.feed(&[b]);
            records.extend(drain(&mut dec));
            // The buffer never accumulates consumed bytes.
            assert!(dec.buffered() <= bytes.len());
        }
        assert_eq!(records, data.records());
        dec.finish().unwrap();
    }

    #[test]
    fn buffer_stays_bounded_by_partial_record() {
        let data = sample_data();
        let bytes = codec::write(&data);
        let mut dec = StreamDecoder::new();
        let mut max_buffered = 0;
        for chunk in bytes.chunks(3) {
            dec.feed(chunk);
            let _ = drain(&mut dec);
            max_buffered = max_buffered.max(dec.buffered());
        }
        // Largest single frame in the fixture is well under 200 bytes; the
        // buffer must never approach the whole-stream size.
        assert!(max_buffered < 200, "buffered {max_buffered}");
        assert!(bytes.len() > 200);
    }

    struct Collect(Vec<PerfRecord>);

    impl ViewSink for Collect {
        fn view(&mut self, view: &RecordView<'_>) {
            self.0.push(view.to_record());
        }
    }

    #[test]
    fn decode_into_matches_next_record_drain() {
        let data = sample_data();
        let bytes = codec::write(&data);
        for chunk_len in [1usize, 3, 7, 64, bytes.len()] {
            let mut dec = StreamDecoder::new();
            let mut sink = Collect(Vec::new());
            let mut delivered = 0;
            for chunk in bytes.chunks(chunk_len) {
                dec.feed(chunk);
                delivered += dec.decode_into(&mut sink).expect("no decode error");
            }
            assert_eq!(sink.0, data.records(), "chunk_len={chunk_len}");
            assert_eq!(delivered, data.len() as u64);
            let stats = dec.finish().expect("clean end");
            assert_eq!(stats.records, data.len() as u64);
        }
    }

    #[test]
    fn next_view_parses_samples_in_place() {
        let data = sample_data();
        let bytes = codec::write(&data);
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        let mut owned = Vec::new();
        loop {
            match dec.next_view().expect("no decode error") {
                Some(RecordView::Sample(s)) => {
                    // Lazily decoded entries must match the eager decode.
                    let entries: Vec<_> = s.lbr_entries().collect();
                    assert_eq!(entries.len(), s.lbr_len());
                    owned.push(PerfRecord::Sample(s.to_sample()));
                }
                Some(RecordView::Other(r)) => owned.push(r),
                None => break,
            }
        }
        assert_eq!(owned, data.records());
    }

    #[test]
    fn consumed_prefix_compacts_past_threshold() {
        // A stream much larger than COMPACT_THRESHOLD, fed in mid-size
        // chunks: lazy compaction must still decode everything and keep
        // the buffer bounded by threshold + chunk, not stream length.
        let mut d = PerfData::new();
        for i in 0..40_000u64 {
            d.push(PerfRecord::Lost { count: i });
        }
        let bytes = codec::write(&d);
        assert!(bytes.len() > 4 * COMPACT_THRESHOLD);
        let mut dec = StreamDecoder::new();
        let mut n = 0u64;
        let chunk_len = 4096;
        for chunk in bytes.chunks(chunk_len) {
            dec.feed(chunk);
            while let Some(r) = dec.next_record().expect("no decode error") {
                assert_eq!(r, PerfRecord::Lost { count: n });
                n += 1;
            }
            assert!(dec.buf.len() <= COMPACT_THRESHOLD + 2 * chunk_len);
        }
        assert_eq!(n, 40_000);
        dec.finish().expect("clean end");
    }

    #[test]
    fn bad_magic_is_fatal_and_sticky() {
        let mut dec = StreamDecoder::new();
        dec.feed(b"NOTAPERF");
        assert_eq!(dec.next_record(), Err(ReadError::BadMagic));
        assert_eq!(dec.next_record(), Err(ReadError::BadMagic));
        assert_eq!(dec.finish(), Err(ReadError::BadMagic));
    }

    #[test]
    fn early_magic_mismatch_detected_on_first_byte() {
        let mut dec = StreamDecoder::new();
        dec.feed(b"X");
        assert_eq!(dec.next_record(), Err(ReadError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = codec::write(&sample_data()).to_vec();
        bytes[8] = 42;
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_record(), Err(ReadError::BadVersion { found: 42 }));
    }

    #[test]
    fn truncated_tail_matches_batch_reader() {
        let data = sample_data();
        let bytes = codec::write(&data);
        for cut in 0..bytes.len() {
            let mut dec = StreamDecoder::new();
            dec.feed(&bytes[..cut]);
            let mut records = Vec::new();
            let decode_err = loop {
                match dec.next_record() {
                    Ok(Some(r)) => records.push(r),
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            };
            assert_eq!(decode_err, None, "valid prefix never errors mid-decode");
            let finish = dec.finish();
            match codec::read(&bytes[..cut]) {
                Ok(batch) => {
                    assert_eq!(records, batch.records(), "cut={cut}");
                    assert!(finish.is_ok(), "cut={cut}");
                }
                Err(e) => {
                    // The streaming decoder yields the valid record prefix,
                    // then reports the identical verdict at finish.
                    assert_eq!(finish, Err(e), "cut={cut}");
                }
            }
        }
    }

    #[test]
    fn unknown_record_types_skipped() {
        let mut bytes = codec::write(&sample_data()).to_vec();
        bytes.push(200);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        let records = drain(&mut dec);
        assert_eq!(records.len(), sample_data().len());
        let stats = dec.finish().unwrap();
        assert_eq!(stats.unknown_skipped, 1);
    }

    #[test]
    fn strict_mode_fails_on_corrupt_frame() {
        let mut d = PerfData::new();
        d.push(PerfRecord::Lost { count: 1 });
        let mut bytes = codec::write(&d).to_vec();
        bytes[codec::HEADER_LEN] = 5; // retype the LOST frame as SAMPLE
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_record(),
            Err(ReadError::Corrupt { record_type: 5 })
        );
    }

    #[test]
    fn resilient_mode_skips_corrupt_frame() {
        let mut d = PerfData::new();
        d.push(PerfRecord::Lost { count: 1 });
        d.push(PerfRecord::Exit {
            pid: 1,
            time_cycles: 5,
        });
        let mut bytes = codec::write(&d).to_vec();
        bytes[codec::HEADER_LEN] = 5; // corrupt the first frame
        let mut dec = StreamDecoder::resilient();
        dec.feed(&bytes);
        let records = drain(&mut dec);
        assert_eq!(
            records,
            &[PerfRecord::Exit {
                pid: 1,
                time_cycles: 5
            }]
        );
        let stats = dec.finish().unwrap();
        assert_eq!(stats.corrupt_skipped, 1);
        assert_eq!(stats.records, 1);
    }

    #[test]
    fn resilient_mode_resyncs_after_garbage_length() {
        let data = {
            let mut d = PerfData::new();
            d.push(PerfRecord::Exit {
                pid: 9,
                time_cycles: 77,
            });
            d
        };
        let good = codec::write(&data);
        // Header, then a frame whose length prefix is absurd, then the
        // valid EXIT frame.
        let mut bytes = good[..codec::HEADER_LEN].to_vec();
        bytes.push(4); // plausible type...
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // ...absurd length
        bytes.extend_from_slice(&good[codec::HEADER_LEN..]);
        let mut dec = StreamDecoder::resilient();
        dec.feed(&bytes);
        let records = drain(&mut dec);
        assert_eq!(records, data.records());
        let stats = dec.finish().unwrap();
        assert!(stats.resync_bytes > 0);
    }

    #[test]
    fn resilient_mode_recovers_from_plausible_corrupt_length() {
        // The corrupted length (24 bytes, well under MAX_RESILIENT_PAYLOAD)
        // claims to reach into the valid frames that follow; trusting it
        // would swallow the first of them. The resync scan must recover
        // all three.
        let data = {
            let mut d = PerfData::new();
            d.push(PerfRecord::Fork {
                parent_pid: 1,
                child_pid: 2,
                time_cycles: 3,
            });
            d.push(PerfRecord::Lost { count: 4 });
            d.push(PerfRecord::Exit {
                pid: 1,
                time_cycles: 5,
            });
            d
        };
        let good = codec::write(&data);
        let mut bytes = good[..codec::HEADER_LEN].to_vec();
        bytes.push(3); // FORK — a known type...
        bytes.extend_from_slice(&24u32.to_le_bytes()); // ...plausible bogus length
        bytes.extend_from_slice(&[0xAB; 4]); // a stub of damaged payload
        bytes.extend_from_slice(&good[codec::HEADER_LEN..]);
        let mut dec = StreamDecoder::resilient();
        dec.feed(&bytes);
        let records = drain(&mut dec);
        assert_eq!(records, data.records());
        let stats = dec.finish().unwrap();
        assert_eq!(stats.corrupt_skipped, 1);
        assert_eq!(stats.records, 3);
    }

    #[test]
    fn strict_mode_rejects_overlong_length_prefix() {
        // A frame whose declared length exceeds its actual payload is
        // Corrupt for both readers (the decode must consume it exactly).
        let mut d = PerfData::new();
        d.push(PerfRecord::Lost { count: 9 });
        let mut bytes = codec::write(&d).to_vec();
        // LOST payload is 8 bytes; declare 10 and pad with two junk bytes.
        let len_at = codec::HEADER_LEN + 1;
        bytes[len_at..len_at + 4].copy_from_slice(&10u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert_eq!(
            codec::read(&bytes),
            Err(ReadError::Corrupt { record_type: 6 })
        );
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_record(),
            Err(ReadError::Corrupt { record_type: 6 })
        );
    }

    #[test]
    fn resilient_mode_drops_truncated_tail() {
        let bytes = codec::write(&sample_data());
        let cut = bytes.len() - 3;
        let mut dec = StreamDecoder::resilient();
        dec.feed(&bytes[..cut]);
        let _ = drain(&mut dec);
        let stats = dec.finish().unwrap();
        assert!(stats.dropped_tail_bytes > 0);
    }

    #[test]
    fn empty_stream_is_bad_magic_like_batch() {
        let dec = StreamDecoder::new();
        assert_eq!(dec.finish(), Err(ReadError::BadMagic));
        assert_eq!(codec::read(b""), Err(ReadError::BadMagic));
    }
}

//! # hbbp-perf — the perf-like collection layer
//!
//! Stand-in for Linux `perf`: record types ([`PerfRecord`]) including
//! samples with eventing IPs and LBR stacks, process events and memory
//! maps; an in-memory file ([`PerfData`]); a binary [`codec`] that survives
//! truncation and unknown record types; an incremental [`StreamDecoder`]
//! that decodes the same format from byte chunks with bounded memory —
//! either as owned records or as zero-copy [`RecordView`]s driven into a
//! [`ViewSink`] (the fused ingest path); and
//! the dual-event collection [`PerfSession`] implementing the paper's
//! single-run HBBP collector (§V.A): two counters, both in LBR mode, one
//! on `INST_RETIRED:PREC_DIST` (the EBS source) and one on
//! `BR_INST_RETIRED:NEAR_TAKEN` (the LBR source). Collection can either
//! materialize a file ([`PerfSession::record`]) or feed a [`RecordSink`]
//! online ([`PerfSession::record_streaming`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
mod data;
mod record;
mod session;
mod stream;
mod view;

pub use codec::{ReadError, StreamEncoder};
pub use data::PerfData;
pub use record::{PerfRecord, PerfSample};
pub use session::{PerfSession, RecordError, RecordSink, Recording};
pub use stream::{StreamDecoder, StreamStats};
pub use view::{LbrEntries, RecordView, SampleView, ViewSink};

//! Borrowed, zero-copy views over encoded perf records.
//!
//! [`crate::StreamDecoder::next_record`] materializes every record as an
//! owned [`PerfRecord`] — for samples that means a fresh `Vec<LbrEntry>`
//! per record, which dominates decode cost (see BENCH_streaming.json). A
//! [`RecordView`] instead borrows the sample payload straight out of the
//! decoder's internal buffer: the fixed sample header is parsed eagerly
//! (it is nine scalar fields), but the LBR stack stays a raw `&[u8]` of
//! little-endian `(from, to)` u64 pairs, decoded lazily by whoever walks
//! [`SampleView::lbr_entries`]. Metadata records (COMM/MMAP/FORK/EXIT,
//! plus LOST) are still decoded owned — they are rare, small, and carry
//! heap strings anyway.
//!
//! A view borrows the decoder's buffer, so it lives only until the next
//! call that may mutate that buffer ([`crate::StreamDecoder::feed`] or
//! another decode call) — the borrow checker enforces this. Convert with
//! [`RecordView::into_owned`] to keep a record.

use crate::record::{PerfRecord, PerfSample};
use hbbp_program::Ring;
use hbbp_sim::{EventSpec, LbrEntry};

/// A PMU sample viewed in place in the wire buffer.
///
/// Scalar fields are parsed; the LBR stack is the raw payload slice,
/// decoded on demand by [`lbr_entries`](SampleView::lbr_entries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleView<'b> {
    /// Index of the PMU counter that fired.
    pub counter: u8,
    /// Event the counter was programmed with.
    pub event: EventSpec,
    /// Eventing IP.
    pub ip: u64,
    /// Timestamp in core cycles.
    pub time_cycles: u64,
    /// Process id.
    pub pid: u32,
    /// Thread id.
    pub tid: u32,
    /// Ring level at sample time.
    pub ring: Ring,
    /// Raw LBR bytes: `lbr_len()` × 16 bytes of LE `(from, to)` pairs.
    pub(crate) lbr_bytes: &'b [u8],
}

impl<'b> SampleView<'b> {
    /// Number of LBR entries in the stack.
    pub fn lbr_len(&self) -> usize {
        self.lbr_bytes.len() / 16
    }

    /// Whether the sample carries no LBR stack.
    pub fn lbr_is_empty(&self) -> bool {
        self.lbr_bytes.is_empty()
    }

    /// Iterate the LBR stack, decoding entries in place (oldest first,
    /// matching [`PerfSample::lbr`]).
    pub fn lbr_entries(&self) -> LbrEntries<'b> {
        LbrEntries {
            bytes: self.lbr_bytes,
        }
    }

    /// Materialize the owned sample (allocates the LBR `Vec`).
    pub fn to_sample(&self) -> PerfSample {
        PerfSample {
            counter: self.counter,
            event: self.event,
            ip: self.ip,
            time_cycles: self.time_cycles,
            pid: self.pid,
            tid: self.tid,
            ring: self.ring,
            lbr: self.lbr_entries().collect(),
        }
    }
}

/// Iterator over the LBR entries of a [`SampleView`], decoding each
/// 16-byte LE pair as it is consumed.
#[derive(Debug, Clone)]
pub struct LbrEntries<'b> {
    bytes: &'b [u8],
}

impl Iterator for LbrEntries<'_> {
    type Item = LbrEntry;

    fn next(&mut self) -> Option<LbrEntry> {
        if self.bytes.len() < 16 {
            return None;
        }
        let (head, rest) = self.bytes.split_at(16);
        self.bytes = rest;
        Some(LbrEntry {
            from: u64::from_le_bytes(head[..8].try_into().expect("8 bytes")),
            to: u64::from_le_bytes(head[8..16].try_into().expect("8 bytes")),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bytes.len() / 16;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LbrEntries<'_> {}

/// One record decoded as a view: samples borrow the wire buffer, every
/// other record type is decoded owned (metadata is rare and cheap).
#[derive(Debug, Clone, PartialEq)]
pub enum RecordView<'b> {
    /// A PMU sample borrowed from the buffer.
    Sample(SampleView<'b>),
    /// Any non-sample record, decoded owned.
    Other(PerfRecord),
}

impl RecordView<'_> {
    /// Convert into an owned [`PerfRecord`] (allocates for samples).
    pub fn into_owned(self) -> PerfRecord {
        match self {
            RecordView::Sample(s) => PerfRecord::Sample(s.to_sample()),
            RecordView::Other(r) => r,
        }
    }

    /// Clone out an owned [`PerfRecord`] without consuming the view.
    pub fn to_record(&self) -> PerfRecord {
        match self {
            RecordView::Sample(s) => PerfRecord::Sample(s.to_sample()),
            RecordView::Other(r) => r.clone(),
        }
    }
}

/// Visitor receiving borrowed record views from
/// [`crate::StreamDecoder::decode_into`].
///
/// The view argument is only valid for the duration of the call; a sink
/// that needs to keep a record must convert it with
/// [`RecordView::to_record`].
pub trait ViewSink {
    /// Called once per decoded record, in stream order.
    fn view(&mut self, view: &RecordView<'_>);
}

impl<S: ViewSink + ?Sized> ViewSink for &mut S {
    fn view(&mut self, view: &RecordView<'_>) {
        (**self).view(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_sim::EventKind;

    fn sample_bytes(entries: &[(u64, u64)]) -> Vec<u8> {
        let mut b = Vec::new();
        for &(from, to) in entries {
            b.extend_from_slice(&from.to_le_bytes());
            b.extend_from_slice(&to.to_le_bytes());
        }
        b
    }

    #[test]
    fn lbr_entries_decode_in_place() {
        let bytes = sample_bytes(&[(0x10, 0x20), (0x30, 0x40)]);
        let view = SampleView {
            counter: 1,
            event: EventSpec {
                kind: EventKind::ALL[0],
                precise: true,
            },
            ip: 0x1000,
            time_cycles: 5,
            pid: 9,
            tid: 9,
            ring: Ring::User,
            lbr_bytes: &bytes,
        };
        assert_eq!(view.lbr_len(), 2);
        assert!(!view.lbr_is_empty());
        let entries: Vec<LbrEntry> = view.lbr_entries().collect();
        assert_eq!(
            entries,
            vec![
                LbrEntry {
                    from: 0x10,
                    to: 0x20
                },
                LbrEntry {
                    from: 0x30,
                    to: 0x40
                },
            ]
        );
        assert_eq!(view.lbr_entries().len(), 2);
        assert_eq!(view.to_sample().lbr, entries);
    }

    #[test]
    fn into_owned_matches_to_record() {
        let bytes = sample_bytes(&[(1, 2)]);
        let view = RecordView::Sample(SampleView {
            counter: 0,
            event: EventSpec {
                kind: EventKind::ALL[0],
                precise: false,
            },
            ip: 7,
            time_cycles: 8,
            pid: 1,
            tid: 2,
            ring: Ring::Kernel,
            lbr_bytes: &bytes,
        });
        assert_eq!(view.to_record(), view.clone().into_owned());
        let owned = RecordView::Other(PerfRecord::Lost { count: 3 });
        assert_eq!(owned.to_record(), PerfRecord::Lost { count: 3 });
    }
}

//! Codec robustness properties: the incremental [`StreamDecoder`] must
//! agree with the batch reader [`codec::read`] on every input it can be
//! handed — arbitrary record zoos, arbitrary chunk splits (including
//! mid-header and mid-record cuts), truncated tails, and appended unknown
//! record types. The zero-copy fused drain ([`StreamDecoder::decode_into`])
//! must agree with the owned drain ([`StreamDecoder::next_record`])
//! record-for-record AND stat-for-stat on the same inputs — including
//! resilient-mode corruption and resync.

use hbbp_perf::{
    codec, PerfData, PerfRecord, PerfSample, ReadError, RecordView, StreamDecoder, StreamStats,
    ViewSink,
};
use hbbp_program::Ring;
use hbbp_sim::{EventSpec, LbrEntry};
use proptest::prelude::*;

/// One arbitrary record from compact generator parameters.
fn record_from(kind: u8, a: u64, b: u64, lbr_len: usize) -> PerfRecord {
    match kind % 6 {
        0 => PerfRecord::Comm {
            pid: a as u32,
            tid: b as u32,
            name: format!("proc-{}", a % 100),
        },
        1 => PerfRecord::Mmap {
            pid: a as u32,
            addr: a,
            len: b | 1,
            filename: format!("mod-{}.bin", b % 10),
            ring: if a.is_multiple_of(2) {
                Ring::User
            } else {
                Ring::Kernel
            },
        },
        2 => PerfRecord::Fork {
            parent_pid: a as u32,
            child_pid: b as u32,
            time_cycles: a ^ b,
        },
        3 => PerfRecord::Exit {
            pid: a as u32,
            time_cycles: b,
        },
        4 => PerfRecord::Lost { count: a },
        _ => PerfRecord::Sample(PerfSample {
            counter: (a % 2) as u8,
            event: if a.is_multiple_of(2) {
                EventSpec::inst_retired_prec_dist()
            } else {
                EventSpec::br_inst_retired_near_taken()
            },
            ip: a,
            time_cycles: b,
            pid: (a % 9999) as u32,
            tid: (b % 9999) as u32,
            ring: if b.is_multiple_of(3) {
                Ring::Kernel
            } else {
                Ring::User
            },
            lbr: (0..lbr_len)
                .map(|i| LbrEntry {
                    from: a.wrapping_add(i as u64),
                    to: b.wrapping_add(i as u64),
                })
                .collect(),
        }),
    }
}

fn arb_data() -> impl Strategy<Value = PerfData> {
    proptest::collection::vec((0u8..6, any::<u64>(), any::<u64>(), 0usize..20), 0..40).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(kind, a, b, lbr_len)| record_from(kind, a, b, lbr_len))
                .collect()
        },
    )
}

/// Split `bytes` into chunks at the given relative cut points.
fn chunks<'a>(bytes: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|&c| if bytes.is_empty() { 0 } else { c % bytes.len() })
        .collect();
    points.sort_unstable();
    points.dedup();
    let mut out = Vec::new();
    let mut prev = 0;
    for p in points {
        out.push(&bytes[prev..p]);
        prev = p;
    }
    out.push(&bytes[prev..]);
    out
}

/// Feed chunks through a decoder, collecting records until exhaustion,
/// then finish. Returns the records plus the finish verdict.
fn stream_decode(pieces: &[&[u8]]) -> (Vec<PerfRecord>, Result<(), ReadError>) {
    let mut dec = StreamDecoder::new();
    let mut records = Vec::new();
    for piece in pieces {
        dec.feed(piece);
        loop {
            match dec.next_record() {
                Ok(Some(r)) => records.push(r),
                Ok(None) => break,
                Err(e) => return (records, Err(e)),
            }
        }
    }
    (records, dec.finish().map(|_| ()))
}

/// [`ViewSink`] that materializes every view, for comparing the fused
/// drain against the owned drain.
struct Collect(Vec<PerfRecord>);

impl ViewSink for Collect {
    fn view(&mut self, view: &RecordView<'_>) {
        self.0.push(view.to_record());
    }
}

/// Feed chunks through a decoder, draining with `next_record` after each
/// chunk. Returns the records plus the full finish verdict (stats on
/// success, the poisoning error otherwise).
#[allow(clippy::type_complexity)]
fn drain_owned(
    mut dec: StreamDecoder,
    pieces: &[&[u8]],
) -> (Vec<PerfRecord>, Result<StreamStats, ReadError>) {
    let mut records = Vec::new();
    for piece in pieces {
        dec.feed(piece);
        loop {
            match dec.next_record() {
                Ok(Some(r)) => records.push(r),
                Ok(None) => break,
                Err(e) => return (records, Err(e)),
            }
        }
    }
    (records, dec.finish())
}

/// [`drain_owned`]'s fused twin: drain with `decode_into` after each chunk.
#[allow(clippy::type_complexity)]
fn drain_fused(
    mut dec: StreamDecoder,
    pieces: &[&[u8]],
) -> (Vec<PerfRecord>, Result<StreamStats, ReadError>) {
    let mut sink = Collect(Vec::new());
    for piece in pieces {
        dec.feed(piece);
        if let Err(e) = dec.decode_into(&mut sink) {
            return (sink.0, Err(e));
        }
    }
    (sink.0, dec.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → split anywhere → stream decode ≡ batch decode.
    #[test]
    fn chunked_stream_equals_batch_read(
        data in arb_data(),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..12),
    ) {
        let bytes = codec::write(&data);
        let pieces = chunks(&bytes, &cuts);
        let (records, finish) = stream_decode(&pieces);
        let batch = codec::read(&bytes).expect("valid encoding");
        prop_assert_eq!(finish, Ok(()));
        prop_assert_eq!(records, batch.records());
    }

    /// A truncated tail yields the batch reader's record prefix plus the
    /// batch reader's exact error verdict, under any chunking.
    #[test]
    fn truncated_tail_matches_batch_verdict(
        data in arb_data(),
        cut_frac in 0.0f64..1.0,
        cuts in proptest::collection::vec(0usize..1_000_000, 0..6),
    ) {
        let bytes = codec::write(&data);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let prefix = &bytes[..cut.min(bytes.len())];
        let pieces = chunks(prefix, &cuts);
        let (records, finish) = stream_decode(&pieces);
        match codec::read(prefix) {
            Ok(batch) => {
                prop_assert_eq!(finish, Ok(()));
                prop_assert_eq!(records, batch.records());
            }
            Err(e) => {
                // Streaming still yields the longest valid record prefix;
                // cut the batch stream back record by record to find it.
                prop_assert_eq!(finish, Err(e));
                let full = codec::read(&bytes).expect("valid encoding");
                prop_assert!(records.len() <= full.len());
                prop_assert_eq!(&records[..], &full.records()[..records.len()]);
            }
        }
    }

    /// Unknown record types spliced between valid frames are skipped by
    /// both readers, at any split.
    #[test]
    fn unknown_frames_skipped_identically(
        data in arb_data(),
        splice_at in 0usize..40,
        unknown_type in 7u8..255,
        payload in proptest::collection::vec(any::<u8>(), 0..30),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..6),
    ) {
        // Re-encode with an unknown frame spliced at a record boundary.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&codec::write(&PerfData::new()));
        let n = data.len();
        let splice = splice_at % (n + 1);
        for (i, record) in data.records().iter().enumerate() {
            if i == splice {
                bytes.push(unknown_type);
                bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&payload);
            }
            let mut one = PerfData::new();
            one.push(record.clone());
            bytes.extend_from_slice(&codec::write(&one)[12..]);
        }
        if splice == n {
            bytes.push(unknown_type);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        let pieces = chunks(&bytes, &cuts);
        let (records, finish) = stream_decode(&pieces);
        let batch = codec::read(&bytes).expect("unknown types are skippable");
        prop_assert_eq!(finish, Ok(()));
        prop_assert_eq!(records, batch.records());
    }

    /// Mid-header splits: cutting inside the 12-byte magic+version header
    /// never desynchronizes the decoder.
    #[test]
    fn mid_header_splits_are_safe(
        data in arb_data(),
        header_cut in 1usize..12,
    ) {
        let bytes = codec::write(&data);
        let pieces = [&bytes[..header_cut], &bytes[header_cut..]];
        let (records, finish) = stream_decode(&pieces);
        prop_assert_eq!(finish, Ok(()));
        prop_assert_eq!(records, codec::read(&bytes).expect("valid").records());
    }

    /// The fused zero-copy drain delivers the same records, the same
    /// stats, and the same verdict as the owned drain under any chunking.
    #[test]
    fn fused_drain_equals_owned_drain(
        data in arb_data(),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..12),
    ) {
        let bytes = codec::write(&data);
        let pieces = chunks(&bytes, &cuts);
        let owned = drain_owned(StreamDecoder::new(), &pieces);
        let fused = drain_fused(StreamDecoder::new(), &pieces);
        prop_assert_eq!(fused, owned);
    }

    /// Fused ≡ owned holds on truncated tails too: same record prefix,
    /// same dropped-tail accounting, same error verdict.
    #[test]
    fn fused_drain_equals_owned_drain_on_truncated_tail(
        data in arb_data(),
        cut_frac in 0.0f64..1.0,
        cuts in proptest::collection::vec(0usize..1_000_000, 0..6),
    ) {
        let bytes = codec::write(&data);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let prefix = &bytes[..cut.min(bytes.len())];
        let pieces = chunks(prefix, &cuts);
        let owned = drain_owned(StreamDecoder::new(), &pieces);
        let fused = drain_fused(StreamDecoder::new(), &pieces);
        prop_assert_eq!(fused, owned);
    }

    /// Resilient mode: corrupting bytes mid-stream sends both drains
    /// through the same resync hunt — identical surviving records and
    /// identical corruption/resync accounting. This is the case where the
    /// fused fast loop must hand off to the slow path without perturbing
    /// the state machine.
    #[test]
    fn fused_resilient_resync_equals_owned(
        data in arb_data(),
        corruptions in proptest::collection::vec((0usize..1_000_000, 1u8..=255), 1..4),
        cuts in proptest::collection::vec(0usize..1_000_000, 0..8),
    ) {
        let mut bytes = codec::write(&data).to_vec();
        // Flip bytes after the header so the stream stays recognizably a
        // perf stream (a bad header is fatal even in resilient mode).
        for (pos, xor) in corruptions {
            if bytes.len() > 12 {
                let i = 12 + pos % (bytes.len() - 12);
                bytes[i] ^= xor;
            }
        }
        let pieces = chunks(&bytes, &cuts);
        let owned = drain_owned(StreamDecoder::resilient(), &pieces);
        let fused = drain_fused(StreamDecoder::resilient(), &pieces);
        prop_assert_eq!(fused, owned);
    }
}

//! # hbbp-mltree — CART classification trees
//!
//! A from-scratch, dependency-free stand-in for the scikit-learn decision
//! trees the paper uses to learn the HBBP rule (§IV): weighted Gini
//! impurity, binary splits on numeric features, depth and leaf-count
//! limits, feature importances, and scikit-style text export for Figure 1.
//!
//! ```
//! use hbbp_mltree::{Dataset, DecisionTree, TrainConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut data = Dataset::new(["block_len"], ["EBS", "LBR"]);
//! for len in 1..=40 {
//!     data.push(vec![len as f64], usize::from(len <= 18))?;
//! }
//! let tree = DecisionTree::train(&data, &TrainConfig::default())?;
//! assert_eq!(tree.predict_label(&[10.0]), "LBR");
//! assert_eq!(tree.predict_label(&[25.0]), "EBS");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod export;
mod tree;

pub use dataset::{Dataset, DatasetError};
pub use export::{export_text, root_rule_summary};
pub use tree::{gini, DecisionTree, Node, TrainConfig, TrainError};

//! Labelled, weighted training data for classification trees.

use std::fmt;

/// A training dataset: named numeric features, named classes, weighted
/// rows.
///
/// Boolean features (like HBBP's bias flag) are encoded as 0.0/1.0; the
/// paper weights training rows "by the number of executions of the basic
/// block" (§IV.B), which maps to [`Dataset::push_weighted`].
#[derive(Debug, Clone)]
pub struct Dataset {
    feature_names: Vec<String>,
    label_names: Vec<String>,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    weights: Vec<f64>,
}

/// Errors constructing or extending a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row's feature count differs from the schema.
    FeatureArity {
        /// Expected feature count.
        expected: usize,
        /// Found feature count.
        found: usize,
    },
    /// A row's label index is out of range.
    BadLabel {
        /// The offending label index.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::FeatureArity { expected, found } => {
                write!(f, "row has {found} features, schema has {expected}")
            }
            DatasetError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Create an empty dataset with the given schema.
    pub fn new(
        feature_names: impl IntoIterator<Item = impl Into<String>>,
        label_names: impl IntoIterator<Item = impl Into<String>>,
    ) -> Dataset {
        Dataset {
            feature_names: feature_names.into_iter().map(Into::into).collect(),
            label_names: label_names.into_iter().map(Into::into).collect(),
            features: Vec::new(),
            labels: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Add a row with weight 1.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on arity or label mismatch.
    pub fn push(&mut self, features: Vec<f64>, label: usize) -> Result<(), DatasetError> {
        self.push_weighted(features, label, 1.0)
    }

    /// Add a weighted row.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on arity or label mismatch.
    pub fn push_weighted(
        &mut self,
        features: Vec<f64>,
        label: usize,
        weight: f64,
    ) -> Result<(), DatasetError> {
        if features.len() != self.feature_names.len() {
            return Err(DatasetError::FeatureArity {
                expected: self.feature_names.len(),
                found: features.len(),
            });
        }
        if label >= self.label_names.len() {
            return Err(DatasetError::BadLabel {
                label,
                classes: self.label_names.len(),
            });
        }
        self.features.push(features);
        self.labels.push(label);
        self.weights.push(weight.max(0.0));
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.label_names.len()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Class names.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Feature vector of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Weight of row `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Weighted class histogram over a set of row indices.
    pub fn class_weights(&self, rows: &[usize]) -> Vec<f64> {
        let mut w = vec![0.0; self.n_classes()];
        for &r in rows {
            w[self.labels[r]] += self.weights[r];
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_enforced() {
        let mut d = Dataset::new(["a", "b"], ["x", "y"]);
        assert!(d.push(vec![1.0, 2.0], 0).is_ok());
        assert_eq!(
            d.push(vec![1.0], 0),
            Err(DatasetError::FeatureArity {
                expected: 2,
                found: 1
            })
        );
        assert_eq!(
            d.push(vec![1.0, 2.0], 5),
            Err(DatasetError::BadLabel {
                label: 5,
                classes: 2
            })
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn weights_and_histograms() {
        let mut d = Dataset::new(["f"], ["a", "b"]);
        d.push_weighted(vec![0.0], 0, 2.0).unwrap();
        d.push_weighted(vec![1.0], 1, 3.0).unwrap();
        d.push_weighted(vec![2.0], 1, 5.0).unwrap();
        assert_eq!(d.total_weight(), 10.0);
        assert_eq!(d.class_weights(&[0, 1, 2]), vec![2.0, 8.0]);
        assert_eq!(d.class_weights(&[1]), vec![0.0, 3.0]);
    }

    #[test]
    fn negative_weights_clamped() {
        let mut d = Dataset::new(["f"], ["a"]);
        d.push_weighted(vec![0.0], 0, -5.0).unwrap();
        assert_eq!(d.weight(0), 0.0);
    }
}

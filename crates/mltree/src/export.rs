//! Scikit-style text rendering of trained trees (the paper's Figure 1 is
//! "abbreviated from Scikit output", with Gini impurity and per-node sample
//! counts).

use crate::{DecisionTree, Node};
use std::fmt::Write as _;

/// Render a tree in `sklearn.tree.export_text`-like form, annotated with
/// gini and samples per node.
///
/// ```text
/// |--- block_len <= 18.50  [gini=0.48, samples=1100]
/// |   |--- class: LBR  [gini=0.08, samples=610]
/// |--- block_len > 18.50  [gini=0.48, samples=1100]
/// |   |--- class: EBS  [gini=0.05, samples=490]
/// ```
pub fn export_text(tree: &DecisionTree) -> String {
    let mut out = String::new();
    render(tree, tree.root(), 0, &mut out);
    out
}

fn render(tree: &DecisionTree, node: &Node, depth: usize, out: &mut String) {
    let indent = "|   ".repeat(depth);
    match node {
        Node::Leaf {
            class,
            gini,
            samples,
            value,
        } => {
            let _ = writeln!(
                out,
                "{indent}|--- class: {}  [gini={:.3}, samples={:.0}, value={:?}]",
                tree.label_names()[*class],
                gini,
                samples,
                value.iter().map(|v| v.round()).collect::<Vec<_>>(),
            );
        }
        Node::Split {
            feature,
            threshold,
            gini,
            samples,
            left,
            right,
            ..
        } => {
            let name = &tree.feature_names()[*feature];
            let _ = writeln!(
                out,
                "{indent}|--- {name} <= {threshold:.2}  [gini={gini:.3}, samples={samples:.0}]"
            );
            render(tree, left, depth + 1, out);
            let _ = writeln!(out, "{indent}|--- {name} > {threshold:.2}");
            render(tree, right, depth + 1, out);
        }
    }
}

/// One-line summary of the learned rule when the root splits on a single
/// feature — the form the paper distils Figure 1 into ("for blocks with 18
/// instructions or less we choose values from LBR, while for longer blocks
/// we choose values from EBS").
pub fn root_rule_summary(tree: &DecisionTree) -> Option<String> {
    match tree.root() {
        Node::Split {
            feature,
            threshold,
            left,
            right,
            ..
        } => {
            let (Node::Leaf { class: lc, .. }, Node::Leaf { class: rc, .. }) =
                (left.as_ref(), right.as_ref())
            else {
                return Some(format!(
                    "root split: {} <= {:.2}",
                    tree.feature_names()[*feature],
                    threshold
                ));
            };
            Some(format!(
                "{} <= {:.2} -> {}; otherwise -> {}",
                tree.feature_names()[*feature],
                threshold,
                tree.label_names()[*lc],
                tree.label_names()[*rc]
            ))
        }
        Node::Leaf { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, TrainConfig};

    fn tree() -> DecisionTree {
        let mut d = Dataset::new(["block_len"], ["EBS", "LBR"]);
        for len in 1..=40 {
            d.push(vec![len as f64], if len <= 18 { 1 } else { 0 })
                .unwrap();
        }
        DecisionTree::train(
            &d,
            &TrainConfig {
                max_depth: 1,
                ..TrainConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn export_contains_feature_gini_samples() {
        let text = export_text(&tree());
        assert!(text.contains("block_len <= 18.50"), "{text}");
        assert!(text.contains("gini="), "{text}");
        assert!(text.contains("samples="), "{text}");
        assert!(text.contains("class: LBR"), "{text}");
        assert!(text.contains("class: EBS"), "{text}");
    }

    #[test]
    fn rule_summary_matches_paper_shape() {
        let s = root_rule_summary(&tree()).unwrap();
        assert!(s.contains("block_len <= 18.50 -> LBR"), "{s}");
        assert!(s.contains("otherwise -> EBS"), "{s}");
    }

    #[test]
    fn leaf_only_tree_has_no_rule() {
        let mut d = Dataset::new(["f"], ["x"]);
        d.push(vec![0.0], 0).unwrap();
        let t = DecisionTree::train(&d, &TrainConfig::default()).unwrap();
        assert!(root_rule_summary(&t).is_none());
        assert!(export_text(&t).contains("class: x"));
    }
}

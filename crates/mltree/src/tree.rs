//! CART classification trees with Gini impurity.
//!
//! The paper: "We employ Decision Trees, an industry-standard Machine
//! Learning method … Concretely, we use Classification Trees" (§IV.A),
//! trained with scikit-learn; features are weighted by block execution
//! counts, and the authors "experiment with varying the number of leaves,
//! the number of children per node and the weights on different variables"
//! (§IV.B). This is a from-scratch equivalent: binary CART, weighted Gini,
//! depth/leaf-count limits, and feature importances (the paper reports a
//! block-length importance above 0.7).

use crate::{Dataset, DatasetError};
use std::fmt;

/// Weighted Gini impurity of a class-weight histogram.
pub fn gini(class_weights: &[f64]) -> f64 {
    let total: f64 = class_weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - class_weights
        .iter()
        .map(|w| {
            let p = w / total;
            p * p
        })
        .sum::<f64>()
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum *weighted* samples a leaf may hold.
    pub min_leaf_weight: f64,
    /// Minimum weighted impurity decrease to accept a split.
    pub min_impurity_decrease: f64,
    /// Optional cap on leaf count; growth is then best-first (largest
    /// impurity decrease splits first), like scikit's `max_leaf_nodes`.
    pub max_leaves: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            max_depth: 4,
            min_leaf_weight: 1.0,
            // Zero matches scikit-learn: impure nodes may split even when
            // the immediate Gini gain is zero (required for XOR-like data).
            min_impurity_decrease: 0.0,
            max_leaves: None,
        }
    }
}

/// A node of a trained tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal split: `feature <= threshold` goes left.
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Gini impurity at this node.
        gini: f64,
        /// Weighted samples reaching this node.
        samples: f64,
        /// Per-class weighted counts at this node.
        value: Vec<f64>,
        /// Left child (`feature <= threshold`).
        left: Box<Node>,
        /// Right child (`feature > threshold`).
        right: Box<Node>,
    },
    /// Leaf: predicts `class`.
    Leaf {
        /// Predicted class index.
        class: usize,
        /// Gini impurity at this leaf.
        gini: f64,
        /// Weighted samples reaching this leaf.
        samples: f64,
        /// Per-class weighted counts at this leaf.
        value: Vec<f64>,
    },
}

impl Node {
    /// Gini impurity at this node.
    pub fn gini(&self) -> f64 {
        match self {
            Node::Split { gini, .. } | Node::Leaf { gini, .. } => *gini,
        }
    }

    /// Weighted sample count at this node.
    pub fn samples(&self) -> f64 {
        match self {
            Node::Split { samples, .. } | Node::Leaf { samples, .. } => *samples,
        }
    }

    fn count_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.count_leaves() + right.count_leaves(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A trained classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    feature_names: Vec<String>,
    label_names: Vec<String>,
    importances: Vec<f64>,
}

/// Errors from training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The dataset has no rows.
    EmptyDataset,
    /// A dataset construction error surfaced during training.
    Dataset(DatasetError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            TrainError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

struct Candidate {
    // Best split found for these rows (None if unsplittable).
    best: Option<BestSplit>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    decrease: f64,
    left_rows: Vec<usize>,
    right_rows: Vec<usize>,
}

impl DecisionTree {
    /// Train a tree on `data` with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] if `data` has no rows.
    pub fn train(data: &Dataset, config: &TrainConfig) -> Result<DecisionTree, TrainError> {
        if data.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let all_rows: Vec<usize> = (0..data.len()).collect();
        let mut importances = vec![0.0; data.n_features()];
        let root = match config.max_leaves {
            None => grow_depth_first(data, config, all_rows, 0, &mut importances),
            Some(max_leaves) => {
                grow_best_first(data, config, all_rows, max_leaves, &mut importances)
            }
        };
        // Normalize importances.
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }
        Ok(DecisionTree {
            root,
            feature_names: data.feature_names().to_vec(),
            label_names: data.label_names().to_vec(),
            importances,
        })
    }

    /// Predict the class of a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` is shorter than the training schema.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicted class name.
    pub fn predict_label(&self, features: &[f64]) -> &str {
        &self.label_names[self.predict(features)]
    }

    /// Root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Normalized feature importances (sum to 1 when any split exists).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.root.count_leaves()
    }

    /// Tree depth (root-only tree = 0).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Feature names from the training schema.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Class names from the training schema.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Accuracy (weighted) on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let mut correct = 0.0;
        let mut total = 0.0;
        for i in 0..data.len() {
            let w = data.weight(i);
            total += w;
            if self.predict(data.row(i)) == data.label(i) {
                correct += w;
            }
        }
        if total > 0.0 {
            correct / total
        } else {
            0.0
        }
    }
}

fn make_leaf(data: &Dataset, rows: &[usize]) -> Node {
    let value = data.class_weights(rows);
    let class = value
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Node::Leaf {
        class,
        gini: gini(&value),
        samples: value.iter().sum(),
        value,
    }
}

/// Find the best split of `rows` over all features.
fn best_split(data: &Dataset, config: &TrainConfig, rows: &[usize]) -> Option<BestSplit> {
    let parent_value = data.class_weights(rows);
    let parent_weight: f64 = parent_value.iter().sum();
    let parent_gini = gini(&parent_value);
    if parent_weight <= 0.0 || parent_gini == 0.0 {
        return None;
    }
    let mut best: Option<BestSplit> = None;
    let n_classes = data.n_classes();
    for feature in 0..data.n_features() {
        // Sort rows by this feature.
        let mut sorted: Vec<usize> = rows.to_vec();
        sorted.sort_by(|&a, &b| {
            data.row(a)[feature]
                .partial_cmp(&data.row(b)[feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Sweep: left histogram grows as the threshold moves right.
        let mut left = vec![0.0; n_classes];
        let mut left_weight = 0.0;
        for k in 0..sorted.len().saturating_sub(1) {
            let r = sorted[k];
            left[data.label(r)] += data.weight(r);
            left_weight += data.weight(r);
            let v = data.row(r)[feature];
            let v_next = data.row(sorted[k + 1])[feature];
            if v == v_next {
                continue; // threshold must separate distinct values
            }
            let right_weight = parent_weight - left_weight;
            if left_weight < config.min_leaf_weight || right_weight < config.min_leaf_weight {
                continue;
            }
            let right: Vec<f64> = parent_value.iter().zip(&left).map(|(p, l)| p - l).collect();
            let weighted_child_gini =
                (left_weight * gini(&left) + right_weight * gini(&right)) / parent_weight;
            let decrease = (parent_gini - weighted_child_gini) * parent_weight;
            if decrease < config.min_impurity_decrease - 1e-12 {
                continue;
            }
            if best.as_ref().is_none_or(|b| decrease > b.decrease) {
                let threshold = (v + v_next) / 2.0;
                best = Some(BestSplit {
                    feature,
                    threshold,
                    decrease,
                    left_rows: Vec::new(),
                    right_rows: Vec::new(),
                });
            }
        }
    }
    // Materialize the partition for the winner.
    if let Some(b) = &mut best {
        for &r in rows {
            if data.row(r)[b.feature] <= b.threshold {
                b.left_rows.push(r);
            } else {
                b.right_rows.push(r);
            }
        }
    }
    best
}

fn grow_depth_first(
    data: &Dataset,
    config: &TrainConfig,
    rows: Vec<usize>,
    depth: usize,
    importances: &mut [f64],
) -> Node {
    if depth >= config.max_depth {
        return make_leaf(data, &rows);
    }
    let Some(split) = best_split(data, config, &rows) else {
        return make_leaf(data, &rows);
    };
    importances[split.feature] += split.decrease;
    let value = data.class_weights(&rows);
    let node_gini = gini(&value);
    let samples: f64 = value.iter().sum();
    let left = grow_depth_first(data, config, split.left_rows, depth + 1, importances);
    let right = grow_depth_first(data, config, split.right_rows, depth + 1, importances);
    Node::Split {
        feature: split.feature,
        threshold: split.threshold,
        gini: node_gini,
        samples,
        value,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Best-first growth with a leaf budget (scikit `max_leaf_nodes` style).
fn grow_best_first(
    data: &Dataset,
    config: &TrainConfig,
    rows: Vec<usize>,
    max_leaves: usize,
    importances: &mut [f64],
) -> Node {
    // Tree under construction, represented as an arena of optional splits.
    enum Slot {
        Leaf(Vec<usize>),
        Split {
            feature: usize,
            threshold: f64,
            left: usize,
            right: usize,
        },
    }
    let mut arena: Vec<Slot> = vec![Slot::Leaf(rows)];
    let mut frontier: Vec<(usize, usize, Candidate)> = Vec::new(); // (slot, depth, candidate)

    let root_rows = match &arena[0] {
        Slot::Leaf(r) => r.clone(),
        Slot::Split { .. } => unreachable!(),
    };
    frontier.push((
        0,
        0,
        Candidate {
            best: best_split(data, config, &root_rows),
        },
    ));
    let mut leaves = 1usize;

    while leaves < max_leaves {
        // Pick the frontier entry with the largest impurity decrease.
        let Some(pos) = frontier
            .iter()
            .enumerate()
            .filter(|(_, (_, _, c))| c.best.is_some())
            .max_by(|a, b| {
                let da = a.1 .2.best.as_ref().map(|s| s.decrease).unwrap_or(0.0);
                let db = b.1 .2.best.as_ref().map(|s| s.decrease).unwrap_or(0.0);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let (slot, depth, cand) = frontier.swap_remove(pos);
        let split = cand.best.expect("filtered for Some");
        importances[split.feature] += split.decrease;
        let li = arena.len();
        arena.push(Slot::Leaf(split.left_rows.clone()));
        let ri = arena.len();
        arena.push(Slot::Leaf(split.right_rows.clone()));
        arena[slot] = Slot::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: li,
            right: ri,
        };
        leaves += 1;
        if depth + 1 < config.max_depth {
            for (idx, rws) in [(li, split.left_rows), (ri, split.right_rows)] {
                frontier.push((
                    idx,
                    depth + 1,
                    Candidate {
                        best: best_split(data, config, &rws),
                    },
                ));
            }
        }
    }

    // Materialize the arena into Node values.
    fn build(data: &Dataset, arena: &[Slot], i: usize) -> Node {
        match &arena[i] {
            Slot::Leaf(rows) => make_leaf(data, rows),
            Slot::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let l = build(data, arena, *left);
                let r = build(data, arena, *right);
                let value: Vec<f64> = l
                    .class_value()
                    .iter()
                    .zip(r.class_value())
                    .map(|(a, b)| a + b)
                    .collect();
                Node::Split {
                    feature: *feature,
                    threshold: *threshold,
                    gini: gini(&value),
                    samples: value.iter().sum(),
                    value,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
    }
    build(data, &arena, 0)
}

impl Node {
    /// Per-class weighted counts at this node.
    pub fn class_value(&self) -> &[f64] {
        match self {
            Node::Split { value, .. } | Node::Leaf { value, .. } => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_rule_len18() -> Dataset {
        // Label 0 = "EBS", 1 = "LBR": LBR wins for len <= 18.
        let mut d = Dataset::new(["block_len", "bias"], ["EBS", "LBR"]);
        for len in 1..=40 {
            for rep in 0..5 {
                let label = if len <= 18 { 1 } else { 0 };
                d.push_weighted(vec![len as f64, (rep % 2) as f64], label, 1.0 + rep as f64)
                    .unwrap();
            }
        }
        d
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10.0, 0.0]), 0.0);
        assert!((gini(&[5.0, 5.0]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // Three balanced classes: 1 - 3*(1/3)^2 = 2/3.
        assert!((gini(&[1.0, 1.0, 1.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_length_cutoff_near_18() {
        let d = dataset_rule_len18();
        let tree = DecisionTree::train(&d, &TrainConfig::default()).unwrap();
        let Node::Split {
            feature, threshold, ..
        } = tree.root()
        else {
            panic!("expected a split at the root");
        };
        assert_eq!(*feature, 0, "root must split on block_len");
        assert!(
            (*threshold - 18.5).abs() < 1.0,
            "threshold {threshold} not near 18.5"
        );
        assert_eq!(tree.predict(&[10.0, 0.0]), 1); // short → LBR
        assert_eq!(tree.predict(&[30.0, 1.0]), 0); // long → EBS
        assert_eq!(tree.predict_label(&[10.0, 0.0]), "LBR");
        assert!(tree.accuracy(&d) > 0.999);
    }

    #[test]
    fn importance_concentrates_on_predictive_feature() {
        let d = dataset_rule_len18();
        let tree = DecisionTree::train(&d, &TrainConfig::default()).unwrap();
        let imp = tree.feature_importances();
        assert!(imp[0] > 0.7, "block_len importance {} too low", imp[0]);
        assert!(imp[1] < 0.3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut d = Dataset::new(["f"], ["only"]);
        for i in 0..10 {
            d.push(vec![i as f64], 0).unwrap();
        }
        let tree = DecisionTree::train(&d, &TrainConfig::default()).unwrap();
        assert_eq!(tree.leaves(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[3.0]), 0);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(["x", "y"], ["zero", "one"]);
        for (x, y, l) in [(0., 0., 0), (0., 1., 1), (1., 0., 1), (1., 1., 0)] {
            for _ in 0..10 {
                d.push(vec![x, y], l).unwrap();
            }
        }
        let shallow = DecisionTree::train(
            &d,
            &TrainConfig {
                max_depth: 1,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        assert!(shallow.accuracy(&d) <= 0.75);
        let deep = DecisionTree::train(
            &d,
            &TrainConfig {
                max_depth: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        assert_eq!(deep.accuracy(&d), 1.0);
        assert_eq!(deep.depth(), 2);
    }

    #[test]
    fn max_leaves_bounds_tree_size() {
        let d = dataset_rule_len18();
        let tree = DecisionTree::train(
            &d,
            &TrainConfig {
                max_depth: 10,
                max_leaves: Some(3),
                ..TrainConfig::default()
            },
        )
        .unwrap();
        assert!(tree.leaves() <= 3);
        // The first (best) split must still be the length cutoff.
        let Node::Split { feature, .. } = tree.root() else {
            panic!("root split expected");
        };
        assert_eq!(*feature, 0);
    }

    #[test]
    fn weights_shift_the_decision() {
        // Two overlapping populations; heavy weights on class 1 for f<=5.
        let mut d = Dataset::new(["f"], ["a", "b"]);
        for i in 0..10 {
            d.push_weighted(vec![i as f64], 0, 1.0).unwrap();
            d.push_weighted(vec![i as f64], 1, if i <= 5 { 10.0 } else { 0.1 })
                .unwrap();
        }
        let tree = DecisionTree::train(&d, &TrainConfig::default()).unwrap();
        assert_eq!(
            tree.predict(&[2.0]),
            1,
            "heavy class must win where it dominates"
        );
        assert_eq!(tree.predict(&[9.0]), 0);
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = Dataset::new(["f"], ["a", "b"]);
        assert!(matches!(
            DecisionTree::train(&d, &TrainConfig::default()),
            Err(TrainError::EmptyDataset)
        ));
    }

    #[test]
    fn min_leaf_weight_prevents_tiny_leaves() {
        let d = dataset_rule_len18();
        let tree = DecisionTree::train(
            &d,
            &TrainConfig {
                min_leaf_weight: d.total_weight() / 2.0 + 1.0,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        // No split can satisfy the constraint → single leaf.
        assert_eq!(tree.leaves(), 1);
    }
}

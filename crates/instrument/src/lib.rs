//! # hbbp-instrument — software-instrumentation ground truth (SDE/PIN
//! stand-in)
//!
//! The paper's reference is the Intel Software Development Emulator (PIN):
//! probes at basic-block boundaries produce *exact* execution counts, at
//! the price of 4–76× slowdowns (Table 1), and only for user-mode code
//! ("PIN works in user mode and cannot capture kernel samples", §VII.B).
//!
//! This crate reproduces all three properties:
//!
//! * [`Instrumenter::run`] walks the same deterministic execution the CPU
//!   simulator sees and produces exact per-block counts ([`GroundTruth`]);
//! * a [`CostModel`] charges per-block probe and per-instruction emulation
//!   cycles, yielding workload-dependent slowdown factors;
//! * kernel blocks are invisible: they are skipped (and counted as such),
//!   reproducing the coverage gap that motivates HBBP;
//! * [`MiscountFault`] injects an SDE defect (the paper's footnote 2:
//!   "SDE produces incorrect results for x264ref, as evidenced by PMU
//!   counting verification"), and [`cross_check`] is that verification.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hbbp_isa::{Instruction, LatencyModel, Mnemonic};
use hbbp_program::{Bbec, ExecutionOracle, Layout, MnemonicMix, Program, Ring, Walker};
use hbbp_sim::{EventCounts, EventKind};
use std::fmt;

/// Instrumentation cost parameters (cycles charged on top of the native
/// execution).
///
/// The defaults are calibrated so that typical integer code lands near the
/// paper's suite-average 4× slowdown, FP/vector-heavy code lands near
/// povray's 12×, and emulated ISA extensions can push into the 70×+ range
/// via [`CostModel::with_emulation_multiplier`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Probe cost per basic-block execution.
    pub per_block_cycles: f64,
    /// Base decode/bookkeeping cost per retired instruction.
    pub per_instr_cycles: f64,
    /// Extra cost per floating-point/SIMD instruction (register state
    /// spills around probes).
    pub per_fp_cycles: f64,
    /// Extra cost per branch (control-flow resolution in the VM).
    pub per_branch_cycles: f64,
    /// Whole-run multiplier for workloads the emulator must interpret
    /// instruction-by-instruction (e.g. unsupported ISA extensions).
    pub emulation_multiplier: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            per_block_cycles: 9.0,
            per_instr_cycles: 2.0,
            per_fp_cycles: 7.0,
            per_branch_cycles: 4.0,
            emulation_multiplier: 1.0,
        }
    }
}

impl CostModel {
    /// Cost model with a whole-run emulation multiplier.
    pub fn with_emulation_multiplier(mut self, multiplier: f64) -> CostModel {
        self.emulation_multiplier = multiplier;
        self
    }

    fn instr_cost(&self, instr: &Instruction) -> f64 {
        let mut c = self.per_instr_cycles;
        if instr.element().is_float() {
            c += self.per_fp_cycles;
        }
        if instr.is_branch() {
            c += self.per_branch_cycles;
        }
        c
    }
}

/// An injected instrumentation defect: the tool over/under-counts one
/// mnemonic by a factor (the paper's x264ref SDE bug).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiscountFault {
    /// The miscounted mnemonic.
    pub mnemonic: Mnemonic,
    /// Reported count = true count × factor.
    pub factor: f64,
}

/// Exact ground truth from one instrumented run.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Exact per-block execution counts (user-mode blocks only).
    pub bbec: Bbec,
    /// Reported instruction mix (exact unless a fault is injected).
    pub mix: MnemonicMix,
    /// Reported total instructions (= `mix.total()`).
    pub instructions: f64,
    /// User-mode block executions observed.
    pub block_executions: u64,
    /// Kernel block executions the instrumenter could NOT see.
    pub kernel_blocks_invisible: u64,
    /// Native (uninstrumented) cycles of the user+kernel execution.
    pub native_cycles: u64,
    /// Cycles of the instrumented run (native + instrumentation cost).
    pub instrumented_cycles: u64,
}

impl GroundTruth {
    /// Native wall-clock seconds at `freq_ghz`.
    pub fn native_seconds(&self, freq_ghz: f64) -> f64 {
        self.native_cycles as f64 / (freq_ghz * 1e9)
    }

    /// Instrumented wall-clock seconds at `freq_ghz`.
    pub fn instrumented_seconds(&self, freq_ghz: f64) -> f64 {
        self.instrumented_cycles as f64 / (freq_ghz * 1e9)
    }

    /// Slowdown factor of the instrumented run.
    pub fn slowdown(&self) -> f64 {
        if self.native_cycles == 0 {
            1.0
        } else {
            self.instrumented_cycles as f64 / self.native_cycles as f64
        }
    }
}

/// The software instrumenter.
#[derive(Debug, Clone, Default)]
pub struct Instrumenter {
    /// Cost model for runtime accounting.
    pub cost: CostModel,
    /// Timing model used for native cycle accounting (must match the CPU
    /// simulator's to make slowdowns comparable).
    pub latency: LatencyModel,
    /// Optional injected counting defect.
    pub fault: Option<MiscountFault>,
}

impl Instrumenter {
    /// Instrumenter with default cost model and no fault.
    pub fn new() -> Instrumenter {
        Instrumenter::default()
    }

    /// Use a specific cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Instrumenter {
        self.cost = cost;
        self
    }

    /// Inject a counting defect.
    pub fn with_fault(mut self, fault: MiscountFault) -> Instrumenter {
        self.fault = Some(fault);
        self
    }

    /// Run the program under instrumentation.
    ///
    /// The same `oracle` seed as a simulator run reproduces the identical
    /// execution, so ground truth corresponds 1:1 with what the PMU saw.
    pub fn run<O: ExecutionOracle>(
        &self,
        program: &Program,
        layout: &Layout,
        oracle: O,
    ) -> GroundTruth {
        // Per-block precomputation.
        let nblocks = program.block_count();
        let mut native_cycles_per_block = vec![0u64; nblocks];
        let mut instr_cost_per_block = vec![0f64; nblocks];
        let mut is_user = vec![false; nblocks];
        for block in program.blocks() {
            let i = block.id().index();
            let mut native = 0u64;
            let mut cost = self.cost.per_block_cycles;
            for instr in block.instrs() {
                native += self.latency.pipelined_cost(instr) as u64;
                cost += self.cost.instr_cost(instr);
            }
            native_cycles_per_block[i] = native;
            instr_cost_per_block[i] = cost;
            is_user[i] = program.ring_of_block(block.id()) == Ring::User;
        }

        let mut exec_counts = vec![0u64; nblocks];
        let mut native_cycles = 0u64;
        let mut instr_cost = 0f64;
        let mut user_block_execs = 0u64;
        let mut kernel_invisible = 0u64;

        let mut walker = Walker::new(program, oracle);
        while let Some(bid) = walker.next_block() {
            let i = bid.index();
            native_cycles += native_cycles_per_block[i];
            if is_user[i] {
                exec_counts[i] += 1;
                user_block_execs += 1;
                instr_cost += instr_cost_per_block[i];
            } else {
                // Ring-0 execution: invisible to the instrumenter, and it
                // costs nothing extra (the probes never run there).
                kernel_invisible += 1;
            }
        }

        let mut bbec = Bbec::new();
        let mut mix = MnemonicMix::new();
        for block in program.blocks() {
            let i = block.id().index();
            if exec_counts[i] == 0 || !is_user[i] {
                continue;
            }
            let count = exec_counts[i] as f64;
            bbec.add(layout.block_start(block.id()), count);
            mix.add_block(block.instrs(), count);
        }
        if let Some(fault) = self.fault {
            let true_count = mix.get(fault.mnemonic);
            if true_count > 0.0 {
                let mut faulty = MnemonicMix::new();
                for (m, c) in mix.iter() {
                    faulty.add(
                        m,
                        if m == fault.mnemonic {
                            c * fault.factor
                        } else {
                            c
                        },
                    );
                }
                mix = faulty;
            }
        }

        let instrumented_cycles =
            native_cycles + (instr_cost * self.cost.emulation_multiplier) as u64;
        GroundTruth {
            instructions: mix.total(),
            bbec,
            mix,
            block_executions: user_block_execs,
            kernel_blocks_invisible: kernel_invisible,
            native_cycles,
            instrumented_cycles,
        }
    }
}

/// Result of verifying instrumentation output against PMU counting — the
/// paper's defence against instrumentation bugs (§VII.B: "We check PIN
/// results against … PMU-reported total instruction counts").
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCheck {
    /// Instruction total reported by the instrumenter (user mode).
    pub instrumented: f64,
    /// Instruction total counted by the PMU (user + kernel).
    pub pmu: u64,
    /// Kernel-mode instructions the PMU saw but the instrumenter cannot
    /// (computed by the caller when known; 0 otherwise).
    pub kernel_instructions: u64,
    /// Relative disagreement after accounting for kernel instructions.
    pub relative_error: f64,
}

impl CrossCheck {
    /// Whether the two totals agree within `tolerance` (fractional).
    pub fn agrees(&self, tolerance: f64) -> bool {
        self.relative_error <= tolerance
    }
}

impl fmt::Display for CrossCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instrumented={:.0} pmu={} (kernel={}) err={:.4}%",
            self.instrumented,
            self.pmu,
            self.kernel_instructions,
            self.relative_error * 100.0
        )
    }
}

/// Verify an instrumented run against PMU counting totals.
///
/// `kernel_instructions` is the number of ring-0 instructions in the PMU
/// total (the instrumenter cannot see them); pass 0 for pure user-mode
/// workloads.
pub fn cross_check(truth: &GroundTruth, pmu: &EventCounts, kernel_instructions: u64) -> CrossCheck {
    let pmu_total = pmu.get(EventKind::InstRetired);
    let comparable = pmu_total.saturating_sub(kernel_instructions) as f64;
    let relative_error = if comparable > 0.0 {
        (truth.instructions - comparable).abs() / comparable
    } else if truth.instructions == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    CrossCheck {
        instrumented: truth.instructions,
        pmu: pmu_total,
        kernel_instructions,
        relative_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::instruction::build::*;
    use hbbp_isa::Reg;
    use hbbp_program::{Program, ProgramBuilder, TripCountOracle};
    use hbbp_sim::Cpu;

    fn two_block_loop(fp: bool) -> (Program, Layout, hbbp_program::BlockId) {
        let mut b = ProgramBuilder::new("instr-test");
        let m = b.module("t.bin", Ring::User);
        let f = b.function(m, "main");
        let head = b.block(f);
        let exit = b.block(f);
        for i in 0..6 {
            if fp {
                b.push(head, rr(Mnemonic::Addps, Reg::xmm(i), Reg::xmm(7)));
            } else {
                b.push(head, rr(Mnemonic::Add, Reg::gpr(i), Reg::gpr(7)));
            }
        }
        b.terminate_branch(head, Mnemonic::Jnz, head, exit);
        b.terminate_exit(exit, bare(Mnemonic::Syscall));
        let mut p = b.build(f).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        (p, layout, head)
    }

    #[test]
    fn counts_are_exact() {
        let (p, layout, head) = two_block_loop(false);
        let trips = 1234;
        let truth =
            Instrumenter::new().run(&p, &layout, TripCountOracle::new(1).with_trips(head, trips));
        assert_eq!(truth.bbec.get(layout.block_start(head)), trips as f64);
        assert_eq!(truth.mix.get(Mnemonic::Add), (trips * 6) as f64);
        assert_eq!(truth.mix.get(Mnemonic::Jnz), trips as f64);
        assert_eq!(truth.mix.get(Mnemonic::Syscall), 1.0);
        assert_eq!(truth.instructions, (trips * 7 + 1) as f64);
    }

    #[test]
    fn matches_simulator_instruction_counts() {
        let (p, layout, head) = two_block_loop(false);
        let mk = || TripCountOracle::new(1).with_trips(head, 5000);
        let truth = Instrumenter::new().run(&p, &layout, mk());
        let run = Cpu::with_seed(1).run_clean(&p, &layout, mk()).unwrap();
        assert_eq!(truth.instructions as u64, run.instructions);
        assert_eq!(truth.native_cycles, run.cycles);
        let check = cross_check(&truth, &run.counts, 0);
        assert!(check.agrees(0.0), "{check}");
    }

    #[test]
    fn fp_code_is_slower_to_instrument() {
        let (pi, li, hi) = two_block_loop(false);
        let (pf, lf, hf) = two_block_loop(true);
        let int_truth =
            Instrumenter::new().run(&pi, &li, TripCountOracle::new(1).with_trips(hi, 10_000));
        let fp_truth =
            Instrumenter::new().run(&pf, &lf, TripCountOracle::new(1).with_trips(hf, 10_000));
        assert!(int_truth.slowdown() > 2.0, "int {}", int_truth.slowdown());
        assert!(
            fp_truth.slowdown() > int_truth.slowdown() + 1.0,
            "fp {} vs int {}",
            fp_truth.slowdown(),
            int_truth.slowdown()
        );
    }

    #[test]
    fn emulation_multiplier_scales_slowdown() {
        let (p, layout, head) = two_block_loop(true);
        let mk = || TripCountOracle::new(1).with_trips(head, 10_000);
        let normal = Instrumenter::new().run(&p, &layout, mk());
        let emulated = Instrumenter::new()
            .with_cost(CostModel::default().with_emulation_multiplier(8.0))
            .run(&p, &layout, mk());
        assert!(emulated.slowdown() > 2.0 * normal.slowdown());
        assert!(emulated.slowdown() > 40.0, "{}", emulated.slowdown());
    }

    #[test]
    fn kernel_code_is_invisible() {
        let mut b = ProgramBuilder::new("k");
        let um = b.module("user.bin", Ring::User);
        let km = b.module("mod.ko", Ring::Kernel);
        let fu = b.function(um, "user_fn");
        let fk = b.function(km, "kernel_fn");

        let k0 = b.block(fk);
        b.push(k0, rr(Mnemonic::Imul, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_ret(k0);

        let u0 = b.block(fu);
        let u1 = b.block(fu);
        b.push(u0, rr(Mnemonic::Add, Reg::gpr(0), Reg::gpr(1)));
        b.terminate_call(u0, fk, u1);
        b.terminate_exit(u1, bare(Mnemonic::Syscall));

        let mut p = b.build(fu).unwrap();
        let layout = Layout::compute(&mut p).unwrap();
        let truth = Instrumenter::new().run(&p, &layout, hbbp_program::ConstOracle(false));
        assert_eq!(truth.kernel_blocks_invisible, 1);
        assert_eq!(truth.mix.get(Mnemonic::Imul), 0.0, "kernel IMUL invisible");
        assert!(truth.mix.get(Mnemonic::Add) > 0.0);
        // PMU sees both rings: cross-check without kernel adjustment fails,
        // with adjustment passes.
        let run = Cpu::with_seed(2)
            .run_clean(&p, &layout, hbbp_program::ConstOracle(false))
            .unwrap();
        let kernel_instrs = 2; // IMUL + RET in kernel_fn
        let bad = cross_check(&truth, &run.counts, 0);
        assert!(!bad.agrees(0.01));
        let good = cross_check(&truth, &run.counts, kernel_instrs);
        assert!(good.agrees(0.0), "{good}");
    }

    #[test]
    fn injected_fault_detected_by_cross_check() {
        let (p, layout, head) = two_block_loop(false);
        let mk = || TripCountOracle::new(1).with_trips(head, 10_000);
        let faulty = Instrumenter::new()
            .with_fault(MiscountFault {
                mnemonic: Mnemonic::Add,
                factor: 0.7,
            })
            .run(&p, &layout, mk());
        let run = Cpu::with_seed(3).run_clean(&p, &layout, mk()).unwrap();
        let check = cross_check(&faulty, &run.counts, 0);
        assert!(!check.agrees(0.01), "fault must be detectable: {check}");
        // The per-mnemonic histogram is distorted exactly by the factor.
        assert_eq!(faulty.mix.get(Mnemonic::Add), 10_000.0 * 6.0 * 0.7);
        assert_eq!(faulty.mix.get(Mnemonic::Jnz), 10_000.0);
    }

    #[test]
    fn slowdown_in_papers_range_for_integer_code() {
        let (p, layout, head) = two_block_loop(false);
        let truth = Instrumenter::new().run(
            &p,
            &layout,
            TripCountOracle::new(1).with_trips(head, 10_000),
        );
        // Table 1: typical slowdowns 4-12x.
        let s = truth.slowdown();
        assert!((2.0..20.0).contains(&s), "slowdown {s} out of range");
    }
}

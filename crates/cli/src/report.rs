//! `hbbp report` — render an instruction-mix table or a per-window
//! timeline from a recording file or a profile-store segment.

use crate::analyze::AnalyzeOptions;
use crate::args::{parse_all, CliError};
use crate::common::{analyzer_for, parse_rule, parse_window, WorkloadOptions};
use crate::registry;
use crate::render::{self, Format, TimelineRow};
use hbbp_core::{HybridRule, Window};
use hbbp_store::ProfileStore;
use std::fmt::Write as _;
use std::path::PathBuf;

/// What to report from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportSource {
    /// A perf recording file (`hbbp record --out`).
    Recording(PathBuf),
    /// A profile-store segment (`part-*.hbbp`).
    Store(PathBuf),
}

/// Parsed `hbbp report` options.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Recording or store input.
    pub source: ReportSource,
    /// Workload selection (needed to turn block counts into mixes).
    pub workload: WorkloadOptions,
    /// Render the per-window timeline instead of the aggregate mix.
    pub timeline: bool,
    /// Window policy when building a timeline from a recording.
    pub window: Option<Window>,
    /// The hybrid decision rule (recording analysis only).
    pub rule: HybridRule,
    /// Output format.
    pub format: Format,
    /// Mix rows to list in text/csv output (0 = all).
    pub top: usize,
}

/// Usage text for `hbbp report`.
pub fn usage() -> String {
    format!(
        "usage: hbbp report (--recording FILE | --store FILE) [options]\n\
         \n\
         Render an instruction-mix table, or (--timeline) a per-window mix\n\
         timeline, from a perf recording or a profile-store segment file.\n\
         \n\
         options:\n\
         \x20 --recording FILE    analyze a perf recording (batch, bit-identical\n\
         \x20                     to `hbbp analyze`)\n\
         \x20 --store FILE        report a store segment's canonical aggregate\n\
         \x20 --timeline          per-window timeline: stored WINDOW frames for\n\
         \x20                     --store, a windowed analysis for --recording\n\
         \x20                     (requires --window)\n\
         \x20 --window samples:<n>|cycles:<n>\n\
         \x20                     window policy for --recording --timeline\n\
         \x20 --rule paper|cutoff=<n>|always-ebs|always-lbr (default paper)\n\
         \x20 --format text|json|csv (default text)\n\
         \x20 --top N             mnemonics to list in text/csv (default 20, 0 = all)\n\
         {}\n\
         \n\
         {}",
        WorkloadOptions::usage_lines(),
        registry::registry_help()
    )
}

impl ReportOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<ReportOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut recording: Option<PathBuf> = None;
        let mut store: Option<PathBuf> = None;
        let mut timeline = false;
        let mut window = None;
        let mut rule = HybridRule::paper_default();
        let mut format = Format::Text;
        let mut top = 20usize;
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--recording" => recording = Some(PathBuf::from(s.value("--recording")?)),
                "--store" => store = Some(PathBuf::from(s.value("--store")?)),
                "--timeline" => timeline = true,
                "--window" => window = Some(parse_window(&s.value("--window")?)?),
                "--rule" => rule = parse_rule(&s.value("--rule")?)?,
                "--format" => format = Format::parse(&s.value("--format")?)?,
                "--top" => top = s.value_parsed("--top", "a row count")?,
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let source = match (recording, store) {
            (Some(path), None) => ReportSource::Recording(path),
            (None, Some(path)) => ReportSource::Store(path),
            _ => {
                return Err(CliError::Usage(
                    "report needs exactly one of --recording FILE or --store FILE".into(),
                ))
            }
        };
        if timeline && window.is_none() && matches!(source, ReportSource::Recording(_)) {
            return Err(CliError::Usage(
                "report --timeline over a recording needs --window samples:<n>|cycles:<n>".into(),
            ));
        }
        Ok(ReportOptions {
            source,
            workload,
            timeline,
            window,
            rule,
            format,
            top,
        })
    }

    /// Execute: returns the rendered report.
    pub fn run(&self) -> Result<String, CliError> {
        match &self.source {
            ReportSource::Recording(path) => {
                // A recording report is exactly an analysis render —
                // shared with `hbbp analyze` so the two cannot drift.
                let opts = AnalyzeOptions {
                    recording: path.clone(),
                    workload: self.workload.clone(),
                    window: if self.timeline { self.window } else { None },
                    rule: self.rule.clone(),
                    format: self.format,
                    top: self.top,
                    estimator: Default::default(),
                    fused: true,
                };
                opts.run()
            }
            ReportSource::Store(path) => {
                let store = ProfileStore::open(path).map_err(|e| {
                    CliError::Failed(format!("cannot open {}: {e}", path.display()))
                })?;
                let snap = store.snapshot();
                if self.timeline {
                    let rows: Vec<TimelineRow> = snap
                        .windows
                        .iter()
                        .map(|w| TimelineRow {
                            index: u64::from(w.index),
                            start_cycles: w.start_cycles,
                            end_cycles: w.end_cycles,
                            ebs_samples: w.ebs_samples,
                            lbr_samples: w.lbr_samples,
                            mix: w.mix.clone(),
                        })
                        .collect();
                    return Ok(render::render_timeline(&rows, self.format));
                }
                let w = self.workload.build()?;
                let analyzer = analyzer_for(&w)?;
                if let Some(id) = &snap.identity {
                    if id.program != w.program().name() {
                        return Err(CliError::Failed(format!(
                            "store identity is `{}` but --workload resolved `{}` — \
                             pass the matching --workload/--scale",
                            id.program,
                            w.program().name()
                        )));
                    }
                }
                let mix = analyzer.mix(&snap.aggregate());
                let (ebs, lbr) = snap.total_samples();
                Ok(match self.format {
                    Format::Text => {
                        let mut out = String::new();
                        let _ = writeln!(
                            out,
                            "aggregate of {} ({} counts frames, {} sources, ebs {ebs} / lbr {lbr} samples)\n",
                            path.display(),
                            snap.counts.len(),
                            snap.sources().len()
                        );
                        out.push_str(&render::render_mix(&mix, self.top, Format::Text));
                        out
                    }
                    Format::Json => format!(
                        "{{\"counts_frames\": {}, \"ebs_samples\": {ebs}, \"lbr_samples\": {lbr}, \
                         \"total\": {}, \"mnemonics\": {}}}\n",
                        snap.counts.len(),
                        render::json_f64(mix.total()),
                        render::mix_json_entries(&mix)
                    ),
                    Format::Csv => render::render_mix(&mix, self.top, Format::Csv),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn requires_exactly_one_source() {
        let err = ReportOptions::parse(&[]).unwrap_err();
        assert!(err.to_string().contains("exactly one of"));
        let err = ReportOptions::parse(&raw(&["--recording", "a", "--store", "b"])).unwrap_err();
        assert!(err.to_string().contains("exactly one of"));
    }

    #[test]
    fn recording_timeline_needs_a_window() {
        let err = ReportOptions::parse(&raw(&["--recording", "p.bin", "--timeline"])).unwrap_err();
        assert!(err.to_string().contains("needs --window"));
        let ok = ReportOptions::parse(&raw(&[
            "--recording",
            "p.bin",
            "--timeline",
            "--window",
            "samples:100",
        ]));
        assert!(ok.is_ok());
    }

    #[test]
    fn store_timeline_needs_no_window() {
        let ok = ReportOptions::parse(&raw(&["--store", "part-0.hbbp", "--timeline"])).unwrap();
        assert!(ok.timeline);
    }
}

//! A tiny std-only flag parser shared by every subcommand.
//!
//! The grammar is deliberately small: positional operands, `--flag value`,
//! `--flag=value`, boolean `--flag`, and `--help`/`-h` anywhere. Every
//! subcommand declares its flags against an [`ArgStream`] and gets
//! consistent error messages ("unknown flag", "missing value", "invalid
//! value") for free; the table-driven tests in `tests/cli_args.rs` pin the
//! exact wording per subcommand.

use std::fmt;

/// Everything a CLI entry point can fail with.
#[derive(Debug)]
pub enum CliError {
    /// The arguments did not parse; the message names the offending flag
    /// or operand. Callers print it together with the subcommand usage
    /// and exit 2.
    Usage(String),
    /// `--help` was requested: print usage and exit 0.
    Help,
    /// The command ran and failed (I/O, wire, corrupt input, …); exit 1.
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Help => write!(f, "help requested"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Failed(format!("I/O error: {e}"))
    }
}

/// Build a [`CliError::Usage`] for a malformed flag value.
pub(crate) fn invalid(flag: &str, value: &str, expected: &str) -> CliError {
    CliError::Usage(format!(
        "invalid value `{value}` for {flag}: expected {expected}"
    ))
}

/// One parsed argument: a flag (with optional inline `=value`) or a
/// positional operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Arg {
    Flag {
        name: String,
        inline: Option<String>,
    },
    Positional(String),
}

/// A forward-only stream of arguments for one subcommand.
///
/// ```
/// use hbbp_cli::args::ArgStream;
///
/// let mut args = ArgStream::new(&["p.bin".into(), "--top=5".into()]);
/// let mut top = 10u32;
/// let mut file = None;
/// while let Some(()) = args
///     .next_with(|a, s| {
///         Ok(Some(match a {
///             "--top" => top = s.value_parsed("--top", "a count")?,
///             _ => file = Some(s.positional(a)?),
///         }))
///     })
///     .unwrap()
/// {}
/// assert_eq!((file.as_deref(), top), (Some("p.bin"), 5));
/// ```
#[derive(Debug)]
pub struct ArgStream {
    args: Vec<Arg>,
    pos: usize,
    /// Pending inline `=value` of the flag currently being dispatched.
    inline: Option<String>,
    /// The flag currently being dispatched (for error messages).
    current: Option<String>,
}

impl ArgStream {
    /// Wrap a subcommand's raw arguments.
    pub fn new(raw: &[String]) -> ArgStream {
        let args = raw
            .iter()
            .map(|a| {
                if let Some(rest) = a.strip_prefix("--") {
                    if rest.is_empty() {
                        return Arg::Positional(a.clone());
                    }
                    match rest.split_once('=') {
                        Some((name, value)) => Arg::Flag {
                            name: format!("--{name}"),
                            inline: Some(value.to_owned()),
                        },
                        None => Arg::Flag {
                            name: a.clone(),
                            inline: None,
                        },
                    }
                } else {
                    Arg::Positional(a.clone())
                }
            })
            .collect();
        ArgStream {
            args,
            pos: 0,
            inline: None,
            current: None,
        }
    }

    /// Dispatch the next argument through `f`. Flags arrive as their
    /// `--name`; positionals arrive verbatim (route them through
    /// [`ArgStream::positional`]). `--help`/`-h` short-circuit to
    /// [`CliError::Help`]. Returns `Ok(None)` when the stream is
    /// exhausted.
    pub fn next_with<F>(&mut self, f: F) -> Result<Option<()>, CliError>
    where
        F: FnOnce(&str, &mut ArgStream) -> Result<Option<()>, CliError>,
    {
        let Some(arg) = self.args.get(self.pos).cloned() else {
            return Ok(None);
        };
        self.pos += 1;
        match arg {
            Arg::Flag { name, inline } => {
                if name == "--help" {
                    return Err(CliError::Help);
                }
                self.inline = inline;
                self.current = Some(name.clone());
                let r = f(&name, self);
                let unconsumed = self.inline.take();
                self.current = None;
                // An inline value the handler never consumed is an error:
                // `--compact=yes` on a boolean flag must not pass silently.
                // The handler's own error wins, though — an unknown flag
                // written as `--flag=value` must still say "unknown flag".
                if r.is_ok() {
                    if let Some(v) = unconsumed {
                        return Err(CliError::Usage(format!(
                            "flag {name} takes no value (got `{v}`)"
                        )));
                    }
                }
                r
            }
            Arg::Positional(p) => {
                if p == "-h" {
                    return Err(CliError::Help);
                }
                f(&p, self)
            }
        }
    }

    /// The value of the flag currently being dispatched: its inline
    /// `=value` if present, otherwise the next argument.
    pub fn value(&mut self, flag: &str) -> Result<String, CliError> {
        if let Some(v) = self.inline.take() {
            return Ok(v);
        }
        match self.args.get(self.pos) {
            Some(Arg::Positional(p)) => {
                self.pos += 1;
                Ok(p.clone())
            }
            Some(Arg::Flag { name, .. }) => Err(CliError::Usage(format!(
                "flag {flag} expects a value, got flag `{name}`"
            ))),
            None => Err(CliError::Usage(format!("flag {flag} expects a value"))),
        }
    }

    /// The flag's value parsed via [`std::str::FromStr`], with a uniform
    /// "invalid value" message naming `expected` on failure.
    pub fn value_parsed<T: std::str::FromStr>(
        &mut self,
        flag: &str,
        expected: &str,
    ) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse().map_err(|_| invalid(flag, &raw, expected))
    }

    /// Accept `arg` as a positional operand; rejects stray flags (an
    /// unknown `--flag` routed here gets an "unknown flag" error, not a
    /// silent positional).
    pub fn positional(&self, arg: &str) -> Result<String, CliError> {
        if arg.starts_with("--") && self.current.is_some() {
            return Err(CliError::Usage(format!("unknown flag `{arg}`")));
        }
        Ok(arg.to_owned())
    }

    /// The canonical "unknown flag" rejection for a subcommand's final
    /// match arm.
    pub fn unknown(&self, arg: &str) -> CliError {
        if arg.starts_with("--") {
            CliError::Usage(format!("unknown flag `{arg}`"))
        } else {
            CliError::Usage(format!("unexpected operand `{arg}`"))
        }
    }
}

/// Drive a subcommand's whole flag matrix: calls `f` per argument until
/// the stream ends or errors.
pub fn parse_all<F>(raw: &[String], mut f: F) -> Result<(), CliError>
where
    F: FnMut(&str, &mut ArgStream) -> Result<Option<()>, CliError>,
{
    let mut stream = ArgStream::new(raw);
    while stream.next_with(&mut f)?.is_some() {}
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn inline_and_separate_values_agree() {
        for argv in [&["--top", "7"][..], &["--top=7"][..]] {
            let mut top = 0u32;
            parse_all(&raw(argv), |a, s| {
                match a {
                    "--top" => top = s.value_parsed("--top", "a count")?,
                    other => return Err(s.unknown(other)),
                }
                Ok(Some(()))
            })
            .unwrap();
            assert_eq!(top, 7);
        }
    }

    #[test]
    fn help_short_circuits() {
        for argv in [&["--help"][..], &["-h"][..], &["--top", "3", "--help"][..]] {
            let err = parse_all(&raw(argv), |a, s| {
                match a {
                    "--top" => {
                        s.value("--top")?;
                    }
                    other => return Err(s.unknown(other)),
                }
                Ok(Some(()))
            })
            .unwrap_err();
            assert!(matches!(err, CliError::Help), "{argv:?}");
        }
    }

    #[test]
    fn missing_value_is_a_usage_error() {
        let err = parse_all(&raw(&["--top"]), |a, s| {
            match a {
                "--top" => {
                    s.value("--top")?;
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "flag --top expects a value");
    }

    #[test]
    fn flag_as_value_is_rejected() {
        let err = parse_all(&raw(&["--top", "--fast"]), |a, s| {
            match a {
                "--top" => {
                    s.value("--top")?;
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "flag --top expects a value, got flag `--fast`"
        );
    }

    #[test]
    fn unconsumed_inline_value_is_rejected() {
        let err = parse_all(&raw(&["--flag=yes"]), |a, _| {
            match a {
                "--flag" => {}
                _ => unreachable!(),
            }
            Ok(Some(()))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "flag --flag takes no value (got `yes`)");
    }

    #[test]
    fn unknown_flag_and_operand_messages() {
        let s = ArgStream::new(&[]);
        assert_eq!(s.unknown("--nope").to_string(), "unknown flag `--nope`");
        assert_eq!(s.unknown("nope").to_string(), "unexpected operand `nope`");
    }
}

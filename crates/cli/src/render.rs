//! Output rendering shared by every subcommand (and by the `experiments`
//! binary in `hbbp-bench`, which delegates its section framing here).
//!
//! Three formats everywhere: human `text` tables, `json` (hand-rolled —
//! the workspace is std-only — with `f64`s printed in shortest
//! round-trip form so rendered numbers stay bit-faithful), and `csv`.

use crate::args::{invalid, CliError};
use hbbp_obs::Snapshot;
use hbbp_program::MnemonicMix;
use std::fmt::Write as _;

/// Output format of a rendering subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable table.
    #[default]
    Text,
    /// JSON object/array on stdout.
    Json,
    /// Comma-separated values with a header row.
    Csv,
}

impl Format {
    /// Parse a `--format` value.
    pub fn parse(value: &str) -> Result<Format, CliError> {
        match value {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            _ => Err(invalid("--format", value, "text|json|csv")),
        }
    }
}

/// Output format of `hbbp query metrics` — separate from [`Format`]
/// because a metrics snapshot renders to a Prometheus exposition, not to
/// CSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Human-readable listing grouped by metric family.
    #[default]
    Text,
    /// JSON object on stdout.
    Json,
    /// Prometheus text exposition format (what a scraper ingests).
    Prometheus,
}

impl MetricsFormat {
    /// Parse a `--format` value for the metrics action.
    pub fn parse(value: &str) -> Result<MetricsFormat, CliError> {
        match value {
            "text" => Ok(MetricsFormat::Text),
            "json" => Ok(MetricsFormat::Json),
            "prometheus" => Ok(MetricsFormat::Prometheus),
            _ => Err(invalid("--format", value, "text|json|prometheus")),
        }
    }
}

/// Render a daemon metrics snapshot in the requested format.
pub fn render_metrics(snap: &Snapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Prometheus => snap.to_prometheus(),
        MetricsFormat::Json => {
            let mut out = String::from("{\"counters\": [");
            for (i, c) in snap.counters.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", {}\"value\": {}}}",
                    json_escape(&c.name),
                    shard_json(c.shard),
                    c.value
                );
            }
            out.push_str("], \"gauges\": [");
            for (i, g) in snap.gauges.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", {}\"current\": {}, \"high_water\": {}}}",
                    json_escape(&g.name),
                    shard_json(g.shard),
                    g.current,
                    g.high_water
                );
            }
            out.push_str("], \"histograms\": [");
            for (i, h) in snap.histograms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", {}\"count\": {}, \"sum\": {}, \"buckets\": [",
                    json_escape(&h.name),
                    shard_json(h.shard),
                    h.count,
                    h.sum
                );
                for (j, b) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{b}");
                }
                out.push_str("]}");
            }
            out.push_str("]}\n");
            out
        }
        MetricsFormat::Text => {
            if snap.is_empty() {
                return "no metrics: the daemon runs without a registry\n".to_owned();
            }
            let mut out = String::new();
            let mut family = String::new();
            let mut rule = |out: &mut String, name: &str| {
                let fam = name.split('.').next().unwrap_or(name);
                if fam != family {
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    let _ = writeln!(out, "[{fam}]");
                    family = fam.to_owned();
                }
            };
            // Families interleave kinds, so render name-sorted rows per
            // kind label rather than catalog order.
            let mut rows: Vec<(String, String)> = Vec::new();
            for c in &snap.counters {
                rows.push((c.name.clone(), format!("{}", c.value)));
            }
            for g in &snap.gauges {
                let name = match g.shard {
                    Some(s) => format!("{}[{s}]", g.name),
                    None => g.name.clone(),
                };
                rows.push((name, format!("{} (high {})", g.current, g.high_water)));
            }
            for h in &snap.histograms {
                let quant = |q: f64| match h.quantile_upper_bound(q) {
                    Some(ub) => format!("{ub}"),
                    None => "-".to_owned(),
                };
                rows.push((
                    h.name.clone(),
                    format!(
                        "count {} sum {} mean {:.1} p50<={} p99<={}",
                        h.count,
                        h.sum,
                        h.mean(),
                        quant(0.5),
                        quant(0.99)
                    ),
                ));
            }
            rows.sort();
            for (name, value) in rows {
                rule(&mut out, &name);
                let _ = writeln!(out, "  {name:<36} {value}");
            }
            out
        }
    }
}

fn shard_json(shard: Option<u32>) -> String {
    match shard {
        Some(s) => format!("\"shard\": {s}, "),
        None => String::new(),
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON: shortest round-trip representation
/// (`1234.0`, not `1234`), `null` for non-finite values.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

/// One `"mnemonics": [...]` JSON array from a mix (opcode order, counts
/// in shortest round-trip form).
pub fn mix_json_entries(mix: &MnemonicMix) -> String {
    let mut out = String::from("[");
    for (i, (m, c)) in mix.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"mnemonic\": \"{}\", \"count\": {}}}",
            json_escape(&m.to_string()),
            json_f64(c)
        );
    }
    out.push(']');
    out
}

/// Render an instruction mix in the requested format. `top` limits the
/// listing to the most-executed mnemonics (0 = all, in execution order);
/// JSON always carries the full mix in opcode order so rendered output
/// stays a faithful interchange form.
pub fn render_mix(mix: &MnemonicMix, top: usize, format: Format) -> String {
    match format {
        Format::Text => {
            let total = mix.total();
            let rows = if top == 0 {
                mix.top(mix.len())
            } else {
                mix.top(top)
            };
            let mut out = String::new();
            let _ = writeln!(out, "{:<12} {:>16} {:>8}", "mnemonic", "count", "share");
            for (m, c) in &rows {
                let share = if total > 0.0 { c / total * 100.0 } else { 0.0 };
                let _ = writeln!(out, "{:<12} {:>16.1} {:>7.2}%", m.to_string(), c, share);
            }
            let _ = writeln!(
                out,
                "{:<12} {:>16.1} {:>8}",
                "total",
                total,
                format!("({})", mix.len())
            );
            out
        }
        Format::Json => {
            let mut out = String::from("{");
            let _ = write!(
                out,
                "\"total\": {}, \"mnemonics\": {}",
                json_f64(mix.total()),
                mix_json_entries(mix)
            );
            out.push_str("}\n");
            out
        }
        Format::Csv => {
            let mut out = String::from("mnemonic,count\n");
            let rows = if top == 0 {
                mix.top(mix.len())
            } else {
                mix.top(top)
            };
            for (m, c) in rows {
                let _ = writeln!(out, "{m},{c:?}");
            }
            out
        }
    }
}

/// One window of a rendered timeline — the common shape of a live
/// windowed analysis and a stored `WindowRecord`.
#[derive(Debug, Clone)]
pub struct TimelineRow {
    /// Emission index.
    pub index: u64,
    /// Window start (core cycles).
    pub start_cycles: u64,
    /// Window end (core cycles; exclusive for time windows).
    pub end_cycles: u64,
    /// EBS-event samples in the window.
    pub ebs_samples: u64,
    /// LBR-event samples in the window.
    pub lbr_samples: u64,
    /// The window's HBBP instruction mix.
    pub mix: MnemonicMix,
}

impl TimelineRow {
    /// The window's most-executed mnemonic (empty string for an empty
    /// window).
    pub fn top_mnemonic(&self) -> String {
        self.mix
            .top(1)
            .first()
            .map(|(m, _)| m.to_string())
            .unwrap_or_default()
    }
}

/// Render a per-window mix timeline in the requested format.
pub fn render_timeline(rows: &[TimelineRow], format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<4} {:>12} {:>12} {:>7} {:>7} {:>16}  top",
                "win", "start", "end", "ebs", "lbr", "instructions"
            );
            for r in rows {
                let _ = writeln!(
                    out,
                    "{:<4} {:>12} {:>12} {:>7} {:>7} {:>16.1}  {}",
                    r.index,
                    r.start_cycles,
                    r.end_cycles,
                    r.ebs_samples,
                    r.lbr_samples,
                    r.mix.total(),
                    r.top_mnemonic()
                );
            }
            let _ = writeln!(out, "{} windows", rows.len());
            out
        }
        Format::Json => {
            let mut out = String::from("[");
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"window\": {}, \"start_cycles\": {}, \"end_cycles\": {}, \
                     \"ebs_samples\": {}, \"lbr_samples\": {}, \"total\": {}, \"mnemonics\": {}}}",
                    r.index,
                    r.start_cycles,
                    r.end_cycles,
                    r.ebs_samples,
                    r.lbr_samples,
                    json_f64(r.mix.total()),
                    mix_json_entries(&r.mix)
                );
            }
            out.push_str("]\n");
            out
        }
        Format::Csv => {
            let mut out =
                String::from("window,start_cycles,end_cycles,ebs_samples,lbr_samples,total,top\n");
            for r in rows {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{:?},{}",
                    r.index,
                    r.start_cycles,
                    r.end_cycles,
                    r.ebs_samples,
                    r.lbr_samples,
                    r.mix.total(),
                    r.top_mnemonic()
                );
            }
            out
        }
    }
}

/// Frame one experiment/section output the way the `experiments` binary
/// prints it: `==== name ====`, blank line, body, trailing newline.
pub fn section(name: &str, body: &str) -> String {
    format!("==== {name} ====\n\n{body}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbp_isa::Mnemonic;

    fn mix() -> MnemonicMix {
        let mut m = MnemonicMix::new();
        m.add(Mnemonic::Add, 10.0);
        m.add(Mnemonic::Imul, 2.5);
        m
    }

    #[test]
    fn format_parse_and_errors() {
        assert_eq!(Format::parse("text").unwrap(), Format::Text);
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert_eq!(Format::parse("csv").unwrap(), Format::Csv);
        let err = Format::parse("xml").unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid value `xml` for --format: expected text|json|csv"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(10.0), "10.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn mix_renders_in_all_formats() {
        let m = mix();
        let text = render_mix(&m, 0, Format::Text);
        assert!(text.contains("mnemonic"));
        assert!(text.contains("total"));
        let json = render_mix(&m, 5, Format::Json);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"total\": 12.5"));
        let csv = render_mix(&m, 0, Format::Csv);
        assert!(csv.starts_with("mnemonic,count\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn timeline_renders_in_all_formats() {
        let rows = vec![TimelineRow {
            index: 0,
            start_cycles: 0,
            end_cycles: 100,
            ebs_samples: 3,
            lbr_samples: 2,
            mix: mix(),
        }];
        let text = render_timeline(&rows, Format::Text);
        assert!(text.contains("1 windows"));
        let json = render_timeline(&rows, Format::Json);
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        let csv = render_timeline(&rows, Format::Csv);
        assert!(csv.starts_with("window,start_cycles"));
    }

    #[test]
    fn section_matches_experiments_framing() {
        assert_eq!(section("t", "body\n"), "==== t ====\n\nbody\n\n");
    }
}

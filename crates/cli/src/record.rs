//! `hbbp record` — run a workload under the dual-event HBBP collector,
//! writing the perf stream to a file or straight onto a daemon socket.

use crate::args::{parse_all, CliError};
use crate::common::WorkloadOptions;
use crate::registry;
use hbbp_perf::PerfSession;
use hbbp_sim::{Cpu, EventSpec, RunResult};
use hbbp_store::StoreClient;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;

/// Where the record stream goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordTarget {
    /// Encode onto a file (the `perf.data` equivalent).
    File(PathBuf),
    /// Stream live onto a running daemon as the given source id.
    Daemon(SocketAddr, u32),
}

/// Parsed `hbbp record` options.
#[derive(Debug, Clone)]
pub struct RecordOptions {
    /// Workload + periods selection.
    pub workload: WorkloadOptions,
    /// Hardware seed for the simulated machine.
    pub cpu_seed: u64,
    /// Pid stamped on every record of the stream.
    pub pid: u32,
    /// File or daemon destination.
    pub target: RecordTarget,
}

/// Usage text for `hbbp record`.
pub fn usage() -> String {
    format!(
        "usage: hbbp record (--out FILE | --daemon ADDR [--source N]) [options]\n\
         \n\
         Run a workload once under the paper's dual-event collector (one counter\n\
         on INST_RETIRED:PREC_DIST, one on BR_INST_RETIRED:NEAR_TAKEN) and\n\
         stream the perf records to a file or a running `hbbp serve` daemon.\n\
         \n\
         options:\n\
         \x20 --out FILE          write the binary perf stream to FILE\n\
         \x20 --daemon ADDR       stream onto the daemon at ADDR (host:port)\n\
         \x20 --source N          source id for --daemon (default 1)\n\
         \x20 --cpu-seed N        hardware seed (skid, quirk, jitter; default 3658)\n\
         \x20 --pid N             pid stamped on the stream (default 1000)\n\
         {}\n\
         \n\
         {}",
        WorkloadOptions::usage_lines(),
        registry::registry_help()
    )
}

impl RecordOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<RecordOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut cpu_seed = 0xE4Au64;
        let mut pid = 1000u32;
        let mut out: Option<PathBuf> = None;
        let mut daemon: Option<SocketAddr> = None;
        let mut source = 1u32;
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--out" => out = Some(PathBuf::from(s.value("--out")?)),
                "--daemon" => {
                    daemon = Some(s.value_parsed("--daemon", "a socket address (host:port)")?);
                }
                "--source" => source = s.value_parsed("--source", "a u32 source id")?,
                "--cpu-seed" => cpu_seed = s.value_parsed("--cpu-seed", "a u64 seed")?,
                "--pid" => pid = s.value_parsed("--pid", "a u32 pid")?,
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let target = match (out, daemon) {
            (Some(path), None) => RecordTarget::File(path),
            (None, Some(addr)) => RecordTarget::Daemon(addr, source),
            _ => {
                return Err(CliError::Usage(
                    "record needs exactly one of --out FILE or --daemon ADDR".into(),
                ))
            }
        };
        Ok(RecordOptions {
            workload,
            cpu_seed,
            pid,
            target,
        })
    }

    /// Execute: returns the human summary printed on stdout.
    pub fn run(&self) -> Result<String, CliError> {
        let w = self.workload.build()?;
        let periods = self.workload.periods;
        let session = PerfSession::hbbp(Cpu::with_seed(self.cpu_seed), periods.ebs, periods.lbr)
            .with_pid(self.pid);
        let mut out = String::new();
        match &self.target {
            RecordTarget::File(path) => {
                let file = std::fs::File::create(path).map_err(|e| {
                    CliError::Failed(format!("cannot create {}: {e}", path.display()))
                })?;
                let writer = std::io::BufWriter::new(file);
                let (run, writer) = session
                    .record_to_sink(w.program(), w.layout(), w.oracle(), writer)
                    .map_err(|e| CliError::Failed(format!("recording failed: {e}")))?;
                let file = writer
                    .into_inner()
                    .map_err(|e| CliError::Failed(format!("flush failed: {e}")))?;
                file.sync_all().ok();
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "recorded {} ({:?}) -> {}",
                    w.name(),
                    self.workload.scale,
                    path.display()
                );
                summary(&mut out, &run);
                let _ = writeln!(out, "bytes        {bytes}");
            }
            RecordTarget::Daemon(addr, source) => {
                let client = StoreClient::new(*addr);
                let (run, reply) = client
                    .stream_session(*source, &session, &w)
                    .map_err(|e| CliError::Failed(format!("daemon stream failed: {e}")))?;
                let _ = writeln!(
                    out,
                    "streamed {} ({:?}) -> daemon as source {source}",
                    w.name(),
                    self.workload.scale
                );
                summary(&mut out, &run);
                let _ = writeln!(
                    out,
                    "ingested     {} records / {} samples, {} windows flushed, counts seq {}",
                    reply.records, reply.samples, reply.windows_flushed, reply.counts_seq
                );
            }
        }
        Ok(out)
    }
}

fn summary(out: &mut String, run: &RunResult) {
    let ebs_event = EventSpec::inst_retired_prec_dist();
    let ebs = run.samples.iter().filter(|s| s.event == ebs_event).count();
    let lbr = run.samples.len() - ebs;
    let _ = writeln!(
        out,
        "samples      {} (ebs {ebs} / lbr {lbr}, {} throttled)",
        run.samples.len(),
        run.throttled
    );
    let _ = writeln!(out, "instructions {}", run.instructions);
    let _ = writeln!(
        out,
        "cycles       {} (+{} collection overhead)",
        run.cycles, run.overhead_cycles
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn requires_exactly_one_target() {
        let err = RecordOptions::parse(&raw(&["--workload", "phased"])).unwrap_err();
        assert!(err.to_string().contains("exactly one of"));
        let err =
            RecordOptions::parse(&raw(&["--out", "a.bin", "--daemon", "127.0.0.1:9"])).unwrap_err();
        assert!(err.to_string().contains("exactly one of"));
    }

    #[test]
    fn record_to_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hbbp-cli-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.bin");
        let opts = RecordOptions::parse(&raw(&[
            "--out",
            path.to_str().unwrap(),
            "--workload",
            "phased",
            "--scale",
            "tiny",
        ]))
        .unwrap();
        let summary = opts.run().unwrap();
        assert!(summary.contains("recorded phased"));
        let bytes = std::fs::read(&path).unwrap();
        let data = hbbp_perf::codec::read(&bytes).expect("decodable recording");
        assert!(data.samples().count() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # hbbp-cli — the `hbbp` command-line driver
//!
//! One binary over the whole profiling stack, composing the existing
//! crates into the paper's operational loop:
//!
//! * [`record`] — run a registry workload under the dual-event HBBP
//!   collector ([`hbbp_perf::PerfSession`]), to a file or streamed live
//!   onto a daemon socket;
//! * [`analyze`] — batch ([`hbbp_core::Analyzer::analyze_fused`]) or
//!   windowed ([`hbbp_core::OnlineAnalyzer`]) analysis of a recording;
//! * [`serve`] — the `hbbpd` collection daemon with real flag parsing
//!   (the standalone `hbbpd` binary is a shim over this module);
//! * [`query`] — mix / top-K / stats / epochs / drift / compact /
//!   shutdown against a running daemon ([`hbbp_store::StoreClient`]);
//! * [`store_cmd`] — offline [`hbbp_store::ProfileStore`] maintenance
//!   (`stats`, `merge`, `compact`);
//! * [`report`] — mix tables and per-window timelines from recordings or
//!   store segments, as text, JSON or CSV ([`render`]);
//! * [`watch`] — tail a recording through the windowed analyzer and flag
//!   mix divergence from a stored baseline epoch ([`hbbp_core::MixDrift`]);
//! * [`synth`] — compile a target mix (recording, store segment, or live
//!   daemon) into a calibrated synthetic workload
//!   ([`hbbp_workloads::calibrate`]), emitted as a reproducible spec.
//!
//! Every subcommand is a thin, testable library type (`XxxOptions::parse`
//! plus `run`) with the binary as a shim; the flag grammar lives in
//! [`args`], the workload name index in [`registry`]. `docs/CLI.md` is
//! generated from [`cli_reference`] and golden-pinned so help text and
//! documentation cannot drift.
//!
//! ```text
//! hbbp record --workload phased --out p.bin
//! hbbp analyze p.bin --window samples:1000 --format json
//! hbbp serve --workload phased --dir /tmp/store     # prints ADDR
//! hbbp record --workload phased --daemon ADDR
//! hbbp query mix --addr ADDR
//! hbbp report --store /tmp/store/part-0.hbbp --timeline
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod args;
pub mod common;
pub mod query;
pub mod record;
pub mod registry;
pub mod render;
pub mod report;
pub mod serve;
pub mod store_cmd;
pub mod synth;
pub mod watch;

use args::CliError;

/// The top-level usage text (`hbbp --help`).
pub fn main_usage() -> String {
    "usage: hbbp <command> [options]   (try `hbbp <command> --help`)\n\
     \n\
     The hybrid basic block profiling toolkit: record workloads under the\n\
     dual-event collector, produce instruction mixes, run and query the\n\
     collection daemon, and maintain on-disk profile stores.\n\
     \n\
     commands:\n\
     \x20 record    run a workload under the collector, to file or daemon\n\
     \x20 analyze   instruction mixes from a recording (batch or windowed)\n\
     \x20 serve     run the hbbpd collection daemon\n\
     \x20 query     mix | top | stats | epochs | drift | compact | shutdown\n\
     \x20 store     offline store maintenance: stats | merge | compact\n\
     \x20 report    mix table or window timeline from a recording or store\n\
     \x20 watch     flag mix drift of a recording against a stored baseline\n\
     \x20 synth     compile a target mix into a calibrated synthetic workload\n\
     \x20 help      this text\n"
        .to_owned()
}

/// The usage text of one subcommand, if the name is known.
pub fn usage_for(command: &str) -> Option<String> {
    Some(match command {
        "record" => record::usage(),
        "analyze" => analyze::usage(),
        "serve" => serve::usage("hbbp serve"),
        "query" => query::usage(),
        "store" => store_cmd::usage(),
        "report" => report::usage(),
        "watch" => watch::usage(),
        "synth" => synth::usage(),
        _ => return None,
    })
}

/// Run one subcommand; `Ok(Some(text))` is the output to print,
/// `Ok(None)` means the command printed as it ran (only `serve`).
pub fn run_command(command: &str, args: &[String]) -> Result<Option<String>, CliError> {
    match command {
        "record" => record::RecordOptions::parse(args)?.run().map(Some),
        "analyze" => analyze::AnalyzeOptions::parse(args)?.run().map(Some),
        "serve" => serve::ServeOptions::parse(args)?.run().map(|()| None),
        "query" => query::QueryOptions::parse(args)?.run().map(Some),
        "store" => store_cmd::StoreOptions::parse(args)?.run().map(Some),
        "report" => report::ReportOptions::parse(args)?.run().map(Some),
        "watch" => watch::WatchOptions::parse(args)?.run().map(Some),
        "synth" => synth::SynthOptions::parse(args)?.run().map(Some),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// The whole `hbbp` entry point: parse, dispatch, print, and return the
/// process exit code. The binary is a one-line shim over this (kept in
/// the library so integration tests drive exactly what users run).
pub fn main_impl(args: &[String]) -> i32 {
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{}", main_usage());
        return 2;
    };
    if command == "help" || command == "--help" || command == "-h" {
        print!("{}", main_usage());
        return 0;
    }
    if command == "--version" {
        println!("hbbp {}", env!("CARGO_PKG_VERSION"));
        return 0;
    }
    match run_command(command, &args[1..]) {
        Ok(Some(output)) => {
            print!("{output}");
            0
        }
        Ok(None) => 0,
        Err(CliError::Help) => {
            // usage_for covers every dispatchable command.
            print!("{}", usage_for(command).unwrap_or_else(main_usage));
            0
        }
        Err(CliError::Usage(message)) => {
            eprintln!("hbbp {command}: {message}");
            match usage_for(command) {
                Some(usage) => eprint!("\n{usage}"),
                None => eprint!("\n{}", main_usage()),
            }
            2
        }
        Err(CliError::Failed(message)) => {
            eprintln!("hbbp {command}: {message}");
            1
        }
    }
}

/// The generated CLI reference (`docs/CLI.md`): every subcommand's help
/// text, content-matched to `--help` output and golden-pinned by
/// `tests/cli_reference.rs` so the docs cannot drift from the binary.
pub fn cli_reference() -> String {
    let mut out = String::from(
        "# `hbbp` CLI reference\n\
         \n\
         > Generated from the CLI's own usage text: `hbbp_cli::cli_reference()`.\n\
         > Golden-pinned by `crates/cli/tests/cli_reference.rs` — regenerate with\n\
         > `BLESS=1 cargo test -p hbbp-cli --test cli_reference` after changing\n\
         > any usage string.\n\n",
    );
    out.push_str("## `hbbp`\n\n```text\n");
    out.push_str(&main_usage());
    out.push_str("```\n");
    for cmd in [
        "record", "analyze", "serve", "query", "store", "report", "watch", "synth",
    ] {
        out.push_str(&format!("\n## `hbbp {cmd}`\n\n```text\n"));
        out.push_str(&usage_for(cmd).expect("known command"));
        out.push_str("```\n");
    }
    out.push_str("\n## `hbbpd`\n\n```text\n");
    out.push_str(&serve::usage("hbbpd"));
    out.push_str("```\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_has_usage() {
        for cmd in [
            "record", "analyze", "serve", "query", "store", "report", "watch", "synth",
        ] {
            let usage = usage_for(cmd).unwrap();
            assert!(usage.starts_with("usage:"), "{cmd}");
            assert!(main_usage().contains(cmd), "main usage must list {cmd}");
        }
        assert!(usage_for("nope").is_none());
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let err = run_command("frobnicate", &[]).unwrap_err();
        assert_eq!(err.to_string(), "unknown command `frobnicate`");
    }

    #[test]
    fn reference_covers_all_commands() {
        let reference = cli_reference();
        for cmd in [
            "record", "analyze", "serve", "query", "store", "report", "watch", "synth",
        ] {
            assert!(reference.contains(&format!("## `hbbp {cmd}`")));
        }
        assert!(reference.contains("## `hbbpd`"));
    }
}

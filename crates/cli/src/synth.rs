//! `hbbp synth` — compile a target instruction mix into a calibrated
//! synthetic workload.
//!
//! The target comes from one of three places: an offline recording
//! (whole, or one window of its timeline), a [`hbbp_store::ProfileStore`]
//! segment (aggregate, one epoch's canonical fold, or one timeline
//! window), or a live daemon's aggregate (`hbbp serve`). The solver
//! ([`hbbp_workloads::solve`]) turns the mix into an initial
//! [`SynthSpec`]; the calibrator then closes the loop — generate the
//! workload, record it under the real dual-event collector, analyze the
//! recording with the same fused HBBP estimator every other subcommand
//! uses, and nudge the spec until the *measured* mix lands within
//! `--tolerance` total-variation distance of the target. The winning
//! spec is reproducible: the same spec + seed replays to a byte-identical
//! recording without re-solving.

use crate::analyze::{check_mmap, expected_modules, verify_layout};
use crate::args::{parse_all, CliError};
use crate::common::{analyzer_for, parse_rule, parse_window_flag, WorkloadOptions};
use crate::registry;
use crate::render::{json_f64, mix_json_entries, Format};
use hbbp_core::{Analyzer, HybridRule, OnlineAnalyzer, SamplingPeriods, Window};
use hbbp_perf::{PerfRecord, PerfSession, RecordView, StreamDecoder, ViewSink};
use hbbp_program::{ImageView, MnemonicMix};
use hbbp_sim::Cpu;
use hbbp_store::{ProfileStore, StoreClient, StoreIdentity};
use hbbp_workloads::{calibrate, compile, Calibration, CalibratorConfig, SynthSpec, Workload};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;

/// Where the target mix comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthSource {
    /// An offline recording file (the `hbbp record --out` stream).
    Recording(PathBuf),
    /// A profile store segment (`.hbbp` file).
    Store(PathBuf),
    /// A live daemon's aggregate mix.
    Daemon(SocketAddr),
}

/// Parsed `hbbp synth` options.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Target source.
    pub source: SynthSource,
    /// Store epoch selection (`--store` only); `None` = whole aggregate.
    pub epoch: Option<u32>,
    /// Timeline window selection by canonical index.
    pub window: Option<usize>,
    /// Window size when slicing a recording's timeline.
    pub window_size: Window,
    /// Calibration target: total-variation distance to reach.
    pub tolerance: f64,
    /// Calibration iteration cap.
    pub max_iters: usize,
    /// Generator seed baked into the emitted spec.
    pub seed: u64,
    /// Hardware seed for the measurement recordings.
    pub cpu_seed: u64,
    /// Chain length of the generated program.
    pub blocks: usize,
    /// Dynamic instructions per measurement recording.
    pub dynamic: u64,
    /// Name baked into the emitted spec.
    pub name: String,
    /// Where to write the calibrated spec JSON.
    pub out: Option<PathBuf>,
    /// Report format.
    pub format: Format,
    /// Source workload (identity / layout checks for file sources).
    pub workload: WorkloadOptions,
    /// Hybrid decision rule for every analysis in the loop.
    pub rule: HybridRule,
}

/// Usage text for `hbbp synth`.
pub fn usage() -> String {
    format!(
        "usage: hbbp synth (--recording FILE | --store FILE | --addr ADDR) [options]\n\
         \n\
         Compile a target instruction mix into a calibrated synthetic workload.\n\
         The solver seeds a generator spec from the target; the calibrator then\n\
         records the generated program under the dual-event collector, analyzes\n\
         it with the fused HBBP estimator, and adjusts the spec until the\n\
         measured mix is within --tolerance total-variation distance of the\n\
         target. The spec is emitted as JSON: the same spec + seed reproduces\n\
         the workload byte-for-byte without re-solving.\n\
         \n\
         target selection:\n\
         \x20 --recording FILE    analyze FILE and target its whole-run mix\n\
         \x20 --store FILE        target a store segment's canonical aggregate\n\
         \x20 --addr ADDR         target a live daemon's aggregate (host:port)\n\
         \x20 --epoch N           target one store epoch's fold (--store only)\n\
         \x20 --window N          target timeline window N — (source, index)\n\
         \x20                     order for --store, emission order for\n\
         \x20                     --recording (not valid with --addr)\n\
         \x20 --window-size samples:<n>|cycles:<n>\n\
         \x20                     recording timeline window (default samples:512)\n\
         \n\
         calibration:\n\
         \x20 --tolerance T       target divergence in (0, 1] (default 0.02)\n\
         \x20 --max-iters N       calibration iteration cap (default 24)\n\
         \x20 --seed N            generator seed for the spec (default 803099)\n\
         \x20 --cpu-seed N        hardware seed for measurements (default 3658)\n\
         \x20 --blocks N          generated chain length (default 96)\n\
         \x20 --dynamic N         dynamic instrs per measurement (default 1200000)\n\
         \x20 --name NAME         spec name (default synth)\n\
         \x20 --out FILE          write the calibrated spec JSON to FILE\n\
         \x20 --format text|json  report format (default text)\n\
         \x20 --rule paper|cutoff=<n>|always-ebs|always-lbr\n\
         \x20                     hybrid decision rule (default paper)\n\
         {}\n\
         \n\
         The workload flags describe the SOURCE of the target (the recording's\n\
         layout, the store's identity); they do not shape the generated program.\n\
         \n\
         {}",
        WorkloadOptions::usage_lines(),
        registry::registry_help()
    )
}

impl SynthOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<SynthOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut recording: Option<PathBuf> = None;
        let mut store: Option<PathBuf> = None;
        let mut addr: Option<SocketAddr> = None;
        let mut epoch = None;
        let mut window = None;
        let mut window_size = Window::Samples(512);
        let mut tolerance = 0.02f64;
        let mut max_iters = 24usize;
        let mut seed = 0xC411Bu64;
        let mut cpu_seed = 0xE4Au64;
        let mut blocks = 96usize;
        let mut dynamic = 1_200_000u64;
        let mut name = "synth".to_owned();
        let mut out = None;
        let mut format = Format::Text;
        let mut rule = HybridRule::paper_default();
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--recording" => recording = Some(PathBuf::from(s.value("--recording")?)),
                "--store" => store = Some(PathBuf::from(s.value("--store")?)),
                "--addr" => {
                    addr = Some(s.value_parsed("--addr", "a socket address (host:port)")?);
                }
                "--epoch" => epoch = Some(s.value_parsed("--epoch", "an epoch number")?),
                "--window" => window = Some(s.value_parsed("--window", "a window index")?),
                "--window-size" => {
                    window_size = parse_window_flag("--window-size", &s.value("--window-size")?)?;
                }
                "--tolerance" => {
                    let t: f64 = s.value_parsed("--tolerance", "a divergence in (0, 1]")?;
                    if !(t > 0.0 && t <= 1.0) {
                        return Err(CliError::Usage(
                            "--tolerance must be a divergence in (0, 1]".into(),
                        ));
                    }
                    tolerance = t;
                }
                "--max-iters" => {
                    max_iters = s.value_parsed("--max-iters", "an iteration cap > 0")?;
                    if max_iters == 0 {
                        return Err(CliError::Usage("--max-iters must be > 0".into()));
                    }
                }
                "--seed" => seed = s.value_parsed("--seed", "a u64 seed")?,
                "--cpu-seed" => cpu_seed = s.value_parsed("--cpu-seed", "a u64 seed")?,
                "--blocks" => {
                    blocks = s.value_parsed("--blocks", "a chain length >= 4")?;
                    if blocks < 4 {
                        return Err(CliError::Usage("--blocks must be >= 4".into()));
                    }
                }
                "--dynamic" => {
                    dynamic = s.value_parsed("--dynamic", "an instruction count > 0")?;
                    if dynamic == 0 {
                        return Err(CliError::Usage("--dynamic must be > 0".into()));
                    }
                }
                "--name" => name = s.value("--name")?,
                "--out" => out = Some(PathBuf::from(s.value("--out")?)),
                "--format" => format = Format::parse(&s.value("--format")?)?,
                "--rule" => rule = parse_rule(&s.value("--rule")?)?,
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let source = match (recording, store, addr) {
            (Some(path), None, None) => SynthSource::Recording(path),
            (None, Some(path), None) => SynthSource::Store(path),
            (None, None, Some(addr)) => SynthSource::Daemon(addr),
            _ => {
                return Err(CliError::Usage(
                    "synth needs exactly one of --recording FILE, --store FILE or --addr ADDR"
                        .into(),
                ))
            }
        };
        if epoch.is_some() && !matches!(source, SynthSource::Store(_)) {
            return Err(CliError::Usage(
                "--epoch only applies to a --store target".into(),
            ));
        }
        if window.is_some() && matches!(source, SynthSource::Daemon(_)) {
            return Err(CliError::Usage(
                "--window needs a --recording or --store target".into(),
            ));
        }
        if epoch.is_some() && window.is_some() {
            return Err(CliError::Usage(
                "--epoch and --window are mutually exclusive target selections".into(),
            ));
        }
        Ok(SynthOptions {
            source,
            epoch,
            window,
            window_size,
            tolerance,
            max_iters,
            seed,
            cpu_seed,
            blocks,
            dynamic,
            name,
            out,
            format,
            workload,
            rule,
        })
    }

    /// Resolve the target mix and a one-line description of where it
    /// came from.
    pub fn target(&self) -> Result<(MnemonicMix, String), CliError> {
        match &self.source {
            SynthSource::Recording(path) => self.recording_target(path),
            SynthSource::Store(path) => self.store_target(path),
            SynthSource::Daemon(addr) => {
                let mix = StoreClient::new(*addr)
                    .query_mix()
                    .map_err(|e| CliError::Failed(format!("daemon query to {addr} failed: {e}")))?;
                Ok((mix, format!("daemon {addr} aggregate")))
            }
        }
    }

    fn recording_target(&self, path: &PathBuf) -> Result<(MnemonicMix, String), CliError> {
        let w = self.workload.build()?;
        let analyzer = analyzer_for(&w)?;
        let bytes = std::fs::read(path)
            .map_err(|e| CliError::Failed(format!("cannot read {}: {e}", path.display())))?;
        match self.window {
            None => {
                let data = hbbp_perf::codec::read(&bytes).map_err(|e| {
                    CliError::Failed(format!(
                        "{} is not a decodable recording: {e}",
                        path.display()
                    ))
                })?;
                verify_layout(&data, &w)?;
                let analysis = analyzer.analyze_fused(&data, self.workload.periods, &self.rule);
                let mix = analyzer.mix(&analysis.hbbp.bbec);
                Ok((mix, format!("recording {} (whole run)", path.display())))
            }
            Some(n) => {
                let online =
                    OnlineAnalyzer::new(&analyzer, self.workload.periods, self.rule.clone())
                        .with_window(self.window_size);
                let mut sink = SynthSink {
                    online,
                    expected: expected_modules(&w),
                    workload: &w,
                    err: None,
                };
                let mut decoder = StreamDecoder::new();
                decoder.feed(&bytes);
                let decoded = decoder.decode_into(&mut sink);
                if let Some(err) = sink.err.take() {
                    return Err(err);
                }
                decoded.map_err(|e| {
                    CliError::Failed(format!(
                        "{} is not a decodable recording: {e}",
                        path.display()
                    ))
                })?;
                decoder.finish().map_err(|e| {
                    CliError::Failed(format!("{} ends mid-record: {e}", path.display()))
                })?;
                let outcome = sink.online.finish();
                let total = outcome.windows.len();
                let win = outcome.windows.into_iter().nth(n).ok_or_else(|| {
                    CliError::Failed(format!(
                        "{} has {total} timeline windows at {:?}; --window {n} is out of range",
                        path.display(),
                        self.window_size
                    ))
                })?;
                Ok((
                    win.mix,
                    format!(
                        "recording {} window {n} [{}..{} cycles]",
                        path.display(),
                        win.start_cycles,
                        win.end_cycles
                    ),
                ))
            }
        }
    }

    fn store_target(&self, path: &PathBuf) -> Result<(MnemonicMix, String), CliError> {
        let store = ProfileStore::open(path)
            .map_err(|e| CliError::Failed(format!("cannot open {}: {e}", path.display())))?;
        let snapshot = store.snapshot();
        if let Some(n) = self.window {
            // Window frames carry their mix directly — no analyzer (and
            // no source workload) needed.
            let total = snapshot.window_count();
            let win = snapshot.nth_window(n).ok_or_else(|| {
                CliError::Failed(format!(
                    "store {} holds {total} timeline windows; --window {n} is out of range",
                    path.display()
                ))
            })?;
            return Ok((
                win.mix.clone(),
                format!(
                    "store {} window {n} (source {} index {})",
                    path.display(),
                    win.source,
                    win.index
                ),
            ));
        }
        // Aggregate folds are block-count profiles; mapping them to a
        // mnemonic mix needs the source workload's analyzer.
        let w = self.workload.build()?;
        let analyzer = analyzer_for(&w)?;
        if store.identity() != Some(&StoreIdentity::of_workload(&w, analyzer.map())) {
            return Err(CliError::Failed(format!(
                "store {} was not recorded from workload `{}` — wrong --workload or --scale?",
                path.display(),
                w.name()
            )));
        }
        match self.epoch {
            Some(epoch) => {
                let epochs = snapshot.epochs();
                if !epochs.contains(&epoch) {
                    return Err(CliError::Failed(format!(
                        "store {} has no epoch {epoch} (epochs: {epochs:?})",
                        path.display()
                    )));
                }
                let mix = analyzer.mix(&snapshot.epoch_aggregate(epoch));
                Ok((mix, format!("store {} epoch {epoch}", path.display())))
            }
            None => {
                let mix = analyzer.mix(&snapshot.aggregate());
                Ok((mix, format!("store {} aggregate", path.display())))
            }
        }
    }

    /// The calibrator configuration these options describe.
    pub fn calibrator_config(&self) -> CalibratorConfig {
        CalibratorConfig {
            name: self.name.clone(),
            seed: self.seed,
            tolerance: self.tolerance,
            max_iters: self.max_iters,
            blocks: self.blocks,
            target_dynamic: self.dynamic,
            ..CalibratorConfig::default()
        }
    }

    /// Resolve the target and run the calibration loop. Returns the
    /// target mix, its one-line provenance, and the calibration result
    /// — the programmatic core of [`SynthOptions::run`], exposed for
    /// the differential tests and the bench.
    pub fn execute(&self) -> Result<(MnemonicMix, String, Calibration), CliError> {
        let (target, desc) = self.target()?;
        let cfg = self.calibrator_config();
        let periods = self.workload.periods;
        let rule = self.rule.clone();
        let cpu_seed = self.cpu_seed;
        let mut measure = |spec: &SynthSpec| -> Result<MnemonicMix, String> {
            measure_spec(spec, periods, &rule, cpu_seed)
        };
        let cal = calibrate(&target, &cfg, &mut measure)
            .map_err(|e| CliError::Failed(format!("calibration failed: {e}")))?;
        Ok((target, desc, cal))
    }

    /// Execute: returns the synthesis report.
    pub fn run(&self) -> Result<String, CliError> {
        let (target, desc, cal) = self.execute()?;
        let cfg = self.calibrator_config();
        if let Some(path) = &self.out {
            std::fs::write(path, cal.spec.to_json())
                .map_err(|e| CliError::Failed(format!("cannot write {}: {e}", path.display())))?;
        }
        Ok(match self.format {
            Format::Text => render_text(&cal, &target, &desc, &cfg, self.out.as_deref()),
            _ => render_json(&cal, &target, &desc, &cfg),
        })
    }
}

/// Record one spec's workload under the dual-event collector, in memory.
///
/// This is the generation half of the calibration loop, exposed so the
/// differential and reproducibility tests (and the bench) can replay a
/// calibrated spec byte-for-byte.
pub fn record_spec(
    spec: &SynthSpec,
    periods: SamplingPeriods,
    cpu_seed: u64,
) -> Result<(Workload, Vec<u8>), String> {
    let w = compile(spec).map_err(|e| e.to_string())?;
    let session = PerfSession::hbbp(Cpu::with_seed(cpu_seed), periods.ebs, periods.lbr);
    let (_run, bytes) = session
        .record_to_sink(w.program(), w.layout(), w.oracle(), Vec::new())
        .map_err(|e| format!("recording synthesized workload failed: {e}"))?;
    Ok((w, bytes))
}

/// Analyze an in-memory recording of a synthesized workload with the
/// fused HBBP estimator — the measurement half of the calibration loop.
pub fn analyze_spec_bytes(
    w: &Workload,
    bytes: &[u8],
    periods: SamplingPeriods,
    rule: &HybridRule,
) -> Result<MnemonicMix, String> {
    let analyzer = Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols())
        .map_err(|e| format!("static discovery failed: {e:?}"))?;
    let data = hbbp_perf::codec::read(bytes).map_err(|e| format!("undecodable recording: {e}"))?;
    let analysis = analyzer.analyze_fused(&data, periods, rule);
    Ok(analyzer.mix(&analysis.hbbp.bbec))
}

/// The full measurement: generate, record, analyze. Deterministic for a
/// given `(spec, periods, rule, cpu_seed)`.
pub fn measure_spec(
    spec: &SynthSpec,
    periods: SamplingPeriods,
    rule: &HybridRule,
    cpu_seed: u64,
) -> Result<MnemonicMix, String> {
    let (w, bytes) = record_spec(spec, periods, cpu_seed)?;
    analyze_spec_bytes(&w, &bytes, periods, rule)
}

fn render_text(
    cal: &Calibration,
    target: &MnemonicMix,
    desc: &str,
    cfg: &CalibratorConfig,
    out: Option<&std::path::Path>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "synth target: {desc}");
    let _ = writeln!(
        s,
        "target mix: {} mnemonics, {:.0} weighted instructions \
         (unmatchable share {:.4})",
        target.len(),
        target.total(),
        cal.unmatchable
    );
    let _ = writeln!(s, "iter  body_len  jmp_prob  distance  accepted");
    for step in &cal.steps {
        let _ = writeln!(
            s,
            "{:>4}  {:>8.2}  {:>8.3}  {:>8.4}  {}",
            step.iter,
            step.body_len,
            step.jmp_prob,
            step.distance,
            if step.accepted { "yes" } else { "no" }
        );
    }
    if cal.converged {
        let _ = writeln!(
            s,
            "converged in {} iterations: distance {:.4} <= tolerance {:.4}",
            cal.iterations, cal.distance, cfg.tolerance
        );
    } else {
        let _ = writeln!(
            s,
            "stopped at the iteration cap ({}): distance {:.4} > tolerance {:.4}",
            cfg.max_iters, cal.distance, cfg.tolerance
        );
    }
    let _ = writeln!(
        s,
        "spec: name {} seed {} blocks {} outer {}",
        cal.spec.name, cal.spec.seed, cal.spec.blocks, cal.spec.outer_iterations
    );
    if let Some(path) = out {
        let _ = writeln!(s, "spec written to {}", path.display());
    }
    s
}

fn render_json(
    cal: &Calibration,
    target: &MnemonicMix,
    desc: &str,
    cfg: &CalibratorConfig,
) -> String {
    let mut steps = String::new();
    for (i, step) in cal.steps.iter().enumerate() {
        if i > 0 {
            steps.push_str(", ");
        }
        let _ = write!(
            steps,
            "{{\"iter\": {}, \"distance\": {}, \"accepted\": {}, \
             \"body_len\": {}, \"jmp_prob\": {}}}",
            step.iter,
            json_f64(step.distance),
            step.accepted,
            json_f64(step.body_len),
            json_f64(step.jmp_prob)
        );
    }
    format!(
        "{{\n  \"target\": {{\"source\": \"{}\", \"mnemonics\": {}, \"mix\": {}}},\n  \
         \"calibration\": {{\"converged\": {}, \"iterations\": {}, \"distance\": {}, \
         \"tolerance\": {}, \"unmatchable\": {}, \"steps\": [{}]}},\n  \
         \"spec\": {}\n}}\n",
        crate::render::json_escape(desc),
        target.len(),
        mix_json_entries(target),
        cal.converged,
        cal.iterations,
        json_f64(cal.distance),
        json_f64(cfg.tolerance),
        json_f64(cal.unmatchable),
        steps,
        cal.spec.to_json().trim_end()
    )
}

/// [`ViewSink`] feeding a recording's views into the windowed analyzer
/// after the same MMAP-against-layout check `hbbp analyze` performs.
struct SynthSink<'s, 'a> {
    online: OnlineAnalyzer<'a>,
    expected: Vec<(String, u64, u64)>,
    workload: &'s Workload,
    err: Option<CliError>,
}

impl ViewSink for SynthSink<'_, '_> {
    fn view(&mut self, view: &RecordView<'_>) {
        if self.err.is_some() {
            return;
        }
        if let RecordView::Other(PerfRecord::Mmap {
            addr,
            len,
            filename,
            ..
        }) = view
        {
            if let Err(e) = check_mmap(&self.expected, filename, *addr, *len, self.workload) {
                self.err = Some(e);
                return;
            }
        }
        self.online.push_view(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn exactly_one_source_is_required() {
        for args in [
            &[][..],
            &["--recording", "p.bin", "--store", "s.hbbp"][..],
            &["--store", "s.hbbp", "--addr", "127.0.0.1:9"][..],
        ] {
            let err = SynthOptions::parse(&raw(args)).unwrap_err();
            assert_eq!(
                err.to_string(),
                "synth needs exactly one of --recording FILE, --store FILE or --addr ADDR"
            );
        }
    }

    #[test]
    fn selection_flags_are_source_checked() {
        let err = SynthOptions::parse(&raw(&["--recording", "p.bin", "--epoch", "1"])).unwrap_err();
        assert_eq!(err.to_string(), "--epoch only applies to a --store target");
        let err =
            SynthOptions::parse(&raw(&["--addr", "127.0.0.1:9", "--window", "0"])).unwrap_err();
        assert_eq!(
            err.to_string(),
            "--window needs a --recording or --store target"
        );
        let err = SynthOptions::parse(&raw(&[
            "--store", "s.hbbp", "--epoch", "1", "--window", "0",
        ]))
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "--epoch and --window are mutually exclusive target selections"
        );
    }

    #[test]
    fn tolerance_must_be_a_proper_fraction() {
        for bad in ["0", "0.0", "1.5", "-0.2"] {
            let err =
                SynthOptions::parse(&raw(&["--store", "s.hbbp", "--tolerance", bad])).unwrap_err();
            assert_eq!(
                err.to_string(),
                "--tolerance must be a divergence in (0, 1]",
                "{bad}"
            );
        }
    }

    #[test]
    fn defaults_flow_through() {
        let opts = SynthOptions::parse(&raw(&["--store", "s.hbbp"])).unwrap();
        assert_eq!(opts.tolerance, 0.02);
        assert_eq!(opts.max_iters, 24);
        assert_eq!(opts.seed, 0xC411B);
        assert_eq!(opts.cpu_seed, 0xE4A);
        assert_eq!(opts.blocks, 96);
        assert_eq!(opts.dynamic, 1_200_000);
        assert_eq!(opts.window_size, Window::Samples(512));
        assert_eq!(opts.name, "synth");
        let cfg = opts.calibrator_config();
        assert_eq!(cfg.tolerance, 0.02);
        assert_eq!(cfg.blocks, 96);
    }

    #[test]
    fn knob_floors_are_enforced() {
        let err =
            SynthOptions::parse(&raw(&["--store", "s.hbbp", "--max-iters", "0"])).unwrap_err();
        assert_eq!(err.to_string(), "--max-iters must be > 0");
        let err = SynthOptions::parse(&raw(&["--store", "s.hbbp", "--blocks", "3"])).unwrap_err();
        assert_eq!(err.to_string(), "--blocks must be >= 4");
        let err = SynthOptions::parse(&raw(&["--store", "s.hbbp", "--dynamic", "0"])).unwrap_err();
        assert_eq!(err.to_string(), "--dynamic must be > 0");
    }

    #[test]
    fn measurement_is_deterministic() {
        let mut target = MnemonicMix::new();
        target.add(hbbp_isa::Mnemonic::Add, 700.0);
        target.add(hbbp_isa::Mnemonic::Mov, 200.0);
        target.add(hbbp_isa::Mnemonic::Jnz, 100.0);
        let outcome = hbbp_workloads::solve(
            &target,
            &CalibratorConfig {
                blocks: 24,
                inner_trips: 8,
                target_dynamic: 40_000,
                ..CalibratorConfig::default()
            },
        )
        .unwrap();
        let periods = SamplingPeriods {
            ebs: 1009,
            lbr: 211,
        };
        let rule = HybridRule::paper_default();
        let a = measure_spec(&outcome.spec, periods, &rule, 0xE4A).unwrap();
        let b = measure_spec(&outcome.spec, periods, &rule, 0xE4A).unwrap();
        let union = a.union_mnemonics(&b);
        assert!(!union.is_empty());
        for m in union {
            assert_eq!(a.get(m).to_bits(), b.get(m).to_bits(), "{m}");
        }
    }
}

//! `hbbp query` — speak the wire protocol to a running daemon: aggregate
//! mix, top-K, stats, epoch history, mix drift, compact, shutdown.

use crate::args::{parse_all, CliError};
use crate::render::{self, Format, MetricsFormat};
use hbbp_store::StoreClient;
use std::fmt::Write as _;
use std::net::SocketAddr;

/// What to ask the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryAction {
    /// The aggregate instruction mix.
    Mix,
    /// The `k` most-executed mnemonics.
    Top,
    /// Daemon/store statistics.
    Stats,
    /// List the store's epochs with per-epoch accounting.
    Epochs,
    /// Top-K mix movers between two epochs (signed deltas).
    Drift,
    /// The daemon's self-observability metrics snapshot.
    Metrics,
    /// Tier-compact every partition log and seal the current epoch.
    Compact,
    /// Stop the daemon.
    Shutdown,
}

/// Parsed `hbbp query` options.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// The request to issue.
    pub action: QueryAction,
    /// Daemon address.
    pub addr: SocketAddr,
    /// `k` for [`QueryAction::Top`] and [`QueryAction::Drift`].
    pub k: u32,
    /// Baseline epoch for [`QueryAction::Drift`].
    pub from: u32,
    /// Current epoch for [`QueryAction::Drift`].
    pub to: u32,
    /// Output format of every action except `metrics`.
    pub format: Format,
    /// Output format of the `metrics` action (which renders a Prometheus
    /// exposition instead of CSV).
    pub metrics_format: MetricsFormat,
    /// Mix rows to list in text output (0 = all).
    pub top: usize,
}

/// Usage text for `hbbp query`.
pub fn usage() -> String {
    "usage: hbbp query <mix|top|stats|epochs|drift|metrics|compact|shutdown> --addr HOST:PORT [options]\n\
     \n\
     Query a running daemon (`hbbp serve`) over its wire protocol.\n\
     \n\
     actions:\n\
     \x20 mix                 the aggregate instruction mix (canonical fold)\n\
     \x20 top                 the --k most-executed mnemonics\n\
     \x20 stats               shards, frame counts, sources, store bytes, backpressure\n\
     \x20 epochs              the store's epochs with per-epoch accounting\n\
     \x20 drift               --k largest mix movers --from epoch --to epoch\n\
     \x20 metrics             the daemon's self-observability snapshot (see docs/OBSERVABILITY.md)\n\
     \x20 compact             tier-compact every partition log, seal the epoch\n\
     \x20 shutdown            stop the daemon\n\
     \n\
     options:\n\
     \x20 --addr HOST:PORT    daemon address (required)\n\
     \x20 --k N               mnemonics for `top`/`drift` (default 10)\n\
     \x20 --from N            baseline epoch for `drift` (required)\n\
     \x20 --to N              current epoch for `drift` (required)\n\
     \x20 --top N             mnemonics to list for `mix` text output (default 20, 0 = all)\n\
     \x20 --format FORMAT     text|json|csv; `metrics`: text|json|prometheus (default text)\n"
        .to_owned()
}

impl QueryOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<QueryOptions, CliError> {
        let mut action: Option<QueryAction> = None;
        let mut addr: Option<SocketAddr> = None;
        let mut k = 10u32;
        let mut from: Option<u32> = None;
        let mut to: Option<u32> = None;
        // Which formats `--format` accepts depends on the action, and
        // flags may precede it — so resolve the raw value at the end.
        let mut raw_format: Option<String> = None;
        let mut top = 20usize;
        parse_all(args, |flag, s| {
            match flag {
                "--addr" => {
                    addr = Some(s.value_parsed("--addr", "a socket address (host:port)")?);
                }
                "--k" => k = s.value_parsed("--k", "a count")?,
                "--from" => from = Some(s.value_parsed("--from", "an epoch number")?),
                "--to" => to = Some(s.value_parsed("--to", "an epoch number")?),
                "--top" => top = s.value_parsed("--top", "a row count")?,
                "--format" => raw_format = Some(s.value("--format")?),
                "mix" | "top" | "stats" | "epochs" | "drift" | "metrics" | "compact"
                | "shutdown"
                    if action.is_none() =>
                {
                    action = Some(match flag {
                        "mix" => QueryAction::Mix,
                        "top" => QueryAction::Top,
                        "stats" => QueryAction::Stats,
                        "epochs" => QueryAction::Epochs,
                        "drift" => QueryAction::Drift,
                        "metrics" => QueryAction::Metrics,
                        "compact" => QueryAction::Compact,
                        _ => QueryAction::Shutdown,
                    });
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let Some(action) = action else {
            return Err(CliError::Usage(
                "query needs an action: mix|top|stats|epochs|drift|metrics|compact|shutdown".into(),
            ));
        };
        let mut format = Format::Text;
        let mut metrics_format = MetricsFormat::Text;
        if let Some(raw) = raw_format {
            match action {
                QueryAction::Metrics => metrics_format = MetricsFormat::parse(&raw)?,
                _ => format = Format::parse(&raw)?,
            }
        }
        let Some(addr) = addr else {
            return Err(CliError::Usage(
                "query needs --addr HOST:PORT (the address `hbbp serve` printed)".into(),
            ));
        };
        let (from, to) = match (action, from, to) {
            (QueryAction::Drift, Some(from), Some(to)) => (from, to),
            (QueryAction::Drift, _, _) => {
                return Err(CliError::Usage(
                    "drift needs --from EPOCH and --to EPOCH (see `hbbp query epochs`)".into(),
                ));
            }
            (_, from, to) => (from.unwrap_or(0), to.unwrap_or(0)),
        };
        Ok(QueryOptions {
            action,
            addr,
            k,
            from,
            to,
            format,
            metrics_format,
            top,
        })
    }

    /// Execute: returns the rendered reply.
    pub fn run(&self) -> Result<String, CliError> {
        let client = StoreClient::new(self.addr);
        let fail = |e: hbbp_store::WireError| CliError::Failed(format!("daemon query failed: {e}"));
        match self.action {
            QueryAction::Mix => {
                let mix = client.query_mix().map_err(fail)?;
                Ok(render::render_mix(&mix, self.top, self.format))
            }
            QueryAction::Top => {
                let rows = client.query_top(self.k).map_err(fail)?;
                Ok(match self.format {
                    Format::Text => {
                        let mut out = String::new();
                        for (m, c) in &rows {
                            let _ = writeln!(out, "{:<12} {:>16.1}", m.to_string(), c);
                        }
                        out
                    }
                    Format::Json => {
                        let mut out = String::from("[");
                        for (i, (m, c)) in rows.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            let _ = write!(
                                out,
                                "{{\"mnemonic\": \"{}\", \"count\": {}}}",
                                render::json_escape(&m.to_string()),
                                render::json_f64(*c)
                            );
                        }
                        out.push_str("]\n");
                        out
                    }
                    Format::Csv => {
                        let mut out = String::from("mnemonic,count\n");
                        for (m, c) in &rows {
                            let _ = writeln!(out, "{m},{c:?}");
                        }
                        out
                    }
                })
            }
            QueryAction::Stats => {
                let st = client.stats().map_err(fail)?;
                Ok(match self.format {
                    Format::Json => {
                        let mut queues = String::from("[");
                        for (i, q) in st.writer_queues.iter().enumerate() {
                            if i > 0 {
                                queues.push_str(", ");
                            }
                            let _ = write!(
                                queues,
                                "{{\"shard\": {i}, \"depth\": {}, \"high_water\": {}}}",
                                q.current, q.high_water
                            );
                        }
                        queues.push(']');
                        format!(
                            "{{\"shards\": {}, \"counts_frames\": {}, \"window_frames\": {}, \
                             \"sources\": {}, \"store_bytes\": {}, \"parked_connections\": {}, \
                             \"writer_queues\": {}}}\n",
                            st.shards,
                            st.counts_frames,
                            st.window_frames,
                            st.sources,
                            st.store_bytes,
                            st.parked_connections,
                            queues
                        )
                    }
                    _ => {
                        let mut out = format!(
                            "shards        {}\ncounts frames {}\nwindow frames {}\nsources       {}\nstore bytes   {}\nparked conns  {}\n",
                            st.shards, st.counts_frames, st.window_frames, st.sources, st.store_bytes,
                            st.parked_connections
                        );
                        for (i, q) in st.writer_queues.iter().enumerate() {
                            let _ = writeln!(
                                out,
                                "queue[{i}]      {} (high {})",
                                q.current, q.high_water
                            );
                        }
                        out
                    }
                })
            }
            QueryAction::Epochs => {
                let epochs = client.query_epochs().map_err(fail)?;
                Ok(match self.format {
                    Format::Json => {
                        let mut out = String::from("[");
                        for (i, e) in epochs.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            let _ = write!(
                                out,
                                "{{\"epoch\": {}, \"counts_frames\": {}, \"ebs_samples\": {}, \
                                 \"lbr_samples\": {}}}",
                                e.epoch, e.counts_frames, e.ebs_samples, e.lbr_samples
                            );
                        }
                        out.push_str("]\n");
                        out
                    }
                    Format::Csv => {
                        let mut out = String::from("epoch,counts_frames,ebs_samples,lbr_samples\n");
                        for e in &epochs {
                            let _ = writeln!(
                                out,
                                "{},{},{},{}",
                                e.epoch, e.counts_frames, e.ebs_samples, e.lbr_samples
                            );
                        }
                        out
                    }
                    Format::Text => {
                        let mut out = format!(
                            "{:<8} {:>14} {:>14} {:>14}\n",
                            "epoch", "counts frames", "ebs samples", "lbr samples"
                        );
                        for e in &epochs {
                            let _ = writeln!(
                                out,
                                "{:<8} {:>14} {:>14} {:>14}",
                                e.epoch, e.counts_frames, e.ebs_samples, e.lbr_samples
                            );
                        }
                        out
                    }
                })
            }
            QueryAction::Drift => {
                let rows = client
                    .query_drift(self.from, self.to, self.k)
                    .map_err(fail)?;
                Ok(match self.format {
                    Format::Json => {
                        let mut out = String::from("[");
                        for (i, (m, d)) in rows.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            let _ = write!(
                                out,
                                "{{\"mnemonic\": \"{}\", \"delta\": {}}}",
                                render::json_escape(&m.to_string()),
                                render::json_f64(*d)
                            );
                        }
                        out.push_str("]\n");
                        out
                    }
                    Format::Csv => {
                        let mut out = String::from("mnemonic,delta\n");
                        for (m, d) in &rows {
                            let _ = writeln!(out, "{m},{d:?}");
                        }
                        out
                    }
                    Format::Text => {
                        let mut out = format!(
                            "mix movers, epoch {} -> {}\n{:<12} {:>16}\n",
                            self.from, self.to, "mnemonic", "delta"
                        );
                        for (m, d) in &rows {
                            let _ = writeln!(out, "{:<12} {:>+16.1}", m.to_string(), d);
                        }
                        out
                    }
                })
            }
            QueryAction::Metrics => {
                let snap = client.query_metrics().map_err(fail)?;
                Ok(render::render_metrics(&snap, self.metrics_format))
            }
            QueryAction::Compact => {
                client.compact().map_err(fail)?;
                Ok("compacted (epoch sealed)\n".to_owned())
            }
            QueryAction::Shutdown => {
                client.shutdown().map_err(fail)?;
                Ok("shutdown sent\n".to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn action_is_required() {
        let err = QueryOptions::parse(&raw(&["--addr", "127.0.0.1:9"])).unwrap_err();
        assert!(err.to_string().contains("needs an action"));
    }

    #[test]
    fn missing_addr_is_a_usage_error() {
        let err = QueryOptions::parse(&raw(&["mix"])).unwrap_err();
        assert_eq!(
            err.to_string(),
            "query needs --addr HOST:PORT (the address `hbbp serve` printed)"
        );
    }

    #[test]
    fn malformed_addr_is_a_usage_error() {
        let err = QueryOptions::parse(&raw(&["mix", "--addr", "nonsense"])).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid value `nonsense` for --addr: expected a socket address (host:port)"
        );
    }

    #[test]
    fn top_action_with_k() {
        let opts =
            QueryOptions::parse(&raw(&["top", "--addr", "127.0.0.1:9", "--k", "5"])).unwrap();
        assert_eq!(opts.action, QueryAction::Top);
        assert_eq!(opts.k, 5);
    }

    #[test]
    fn drift_requires_both_epochs() {
        let err = QueryOptions::parse(&raw(&["drift", "--addr", "127.0.0.1:9", "--from", "0"]))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "drift needs --from EPOCH and --to EPOCH (see `hbbp query epochs`)"
        );
        let opts = QueryOptions::parse(&raw(&[
            "drift",
            "--addr",
            "127.0.0.1:9",
            "--from",
            "0",
            "--to",
            "3",
            "--k",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.action, QueryAction::Drift);
        assert_eq!((opts.from, opts.to, opts.k), (0, 3, 7));
    }

    #[test]
    fn epochs_action_parses() {
        let opts = QueryOptions::parse(&raw(&["epochs", "--addr", "127.0.0.1:9"])).unwrap();
        assert_eq!(opts.action, QueryAction::Epochs);
    }
}

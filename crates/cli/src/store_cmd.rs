//! `hbbp store` — offline maintenance of profile-store segment files:
//! `stats`, `merge`, `compact`.

use crate::args::{parse_all, CliError};
use hbbp_store::ProfileStore;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The maintenance action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreAction {
    /// Describe each store file (identity, frames, recovery report).
    Stats(Vec<PathBuf>),
    /// Merge every source store into `--into` (lossless).
    Merge {
        /// Destination store (created if absent; inherits the first
        /// source's identity).
        into: PathBuf,
        /// Source store files.
        sources: Vec<PathBuf>,
    },
    /// Compact each store file in place (atomic rewrite).
    Compact(Vec<PathBuf>),
}

/// Parsed `hbbp store` options.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// The action and its operands.
    pub action: StoreAction,
}

/// Usage text for `hbbp store`.
pub fn usage() -> String {
    "usage: hbbp store <stats|merge|compact> [options] FILE...\n\
     \n\
     Offline maintenance of profile-store segment files (the `part-*.hbbp`\n\
     files a daemon writes, or any store produced with the library).\n\
     \n\
     actions:\n\
     \x20 stats FILE...       identity, frame counts, sample totals, recovery report\n\
     \x20 merge --into OUT FILE...\n\
     \x20                     losslessly merge each source into OUT (created if\n\
     \x20                     absent; identities must match)\n\
     \x20 compact FILE...     rewrite each log as identity + one folded counts\n\
     \x20                     frame + the window timeline (aggregate preserved\n\
     \x20                     bit-exactly)\n"
        .to_owned()
}

impl StoreOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<StoreOptions, CliError> {
        let mut action: Option<String> = None;
        let mut into: Option<PathBuf> = None;
        let mut files: Vec<PathBuf> = Vec::new();
        parse_all(args, |flag, s| {
            match flag {
                "--into" => into = Some(PathBuf::from(s.value("--into")?)),
                "stats" | "merge" | "compact" if action.is_none() => {
                    action = Some(flag.to_owned());
                }
                other if !other.starts_with("--") && action.is_some() => {
                    files.push(PathBuf::from(other));
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let Some(action) = action else {
            return Err(CliError::Usage(
                "store needs an action: stats|merge|compact".into(),
            ));
        };
        if files.is_empty() {
            return Err(CliError::Usage(format!(
                "store {action} needs at least one FILE operand"
            )));
        }
        if action != "merge" && into.is_some() {
            return Err(CliError::Usage(format!(
                "--into is only valid with `store merge` (not `store {action}`)"
            )));
        }
        let action = match action.as_str() {
            "stats" => StoreAction::Stats(files),
            "compact" => StoreAction::Compact(files),
            "merge" => {
                let Some(into) = into else {
                    return Err(CliError::Usage(
                        "store merge needs --into OUT (the destination store)".into(),
                    ));
                };
                StoreAction::Merge {
                    into,
                    sources: files,
                }
            }
            _ => unreachable!("matched above"),
        };
        Ok(StoreOptions { action })
    }

    /// Execute: returns the human summary.
    pub fn run(&self) -> Result<String, CliError> {
        let open = |path: &PathBuf| {
            ProfileStore::open(path)
                .map_err(|e| CliError::Failed(format!("cannot open {}: {e}", path.display())))
        };
        let mut out = String::new();
        match &self.action {
            StoreAction::Stats(files) => {
                for path in files {
                    let store = open(path)?;
                    let snap = store.snapshot();
                    let (ebs, lbr) = snap.total_samples();
                    let report = store.open_report();
                    let _ = writeln!(out, "{}", path.display());
                    let _ = writeln!(
                        out,
                        "  identity      {}",
                        match &snap.identity {
                            Some(id) => format!(
                                "{} ({} blocks, {} modules)",
                                id.program,
                                id.block_count,
                                id.modules.len()
                            ),
                            None => "(none)".to_owned(),
                        }
                    );
                    let _ = writeln!(
                        out,
                        "  counts frames {} ({} sources, ebs {ebs} / lbr {lbr} samples)",
                        snap.counts.len(),
                        snap.sources().len()
                    );
                    let _ = writeln!(out, "  window frames {}", snap.windows.len());
                    let _ = writeln!(out, "  file bytes    {}", store.file_bytes());
                    if report.truncated_bytes > 0 {
                        let _ = writeln!(
                            out,
                            "  recovered     truncated {} corrupt tail bytes on open",
                            report.truncated_bytes
                        );
                    }
                }
            }
            StoreAction::Merge { into, sources } => {
                let mut dest = open(into)?;
                for path in sources {
                    let src = open(path)?;
                    let snap = src.snapshot();
                    if dest.identity().is_none() {
                        if let Some(id) = &snap.identity {
                            dest.set_identity(id.clone()).map_err(|e| {
                                CliError::Failed(format!("cannot set identity: {e}"))
                            })?;
                        }
                    }
                    dest.merge_from(&snap).map_err(|e| {
                        CliError::Failed(format!("merge of {} failed: {e}", path.display()))
                    })?;
                    let _ = writeln!(
                        out,
                        "merged {} ({} counts, {} windows)",
                        path.display(),
                        snap.counts.len(),
                        snap.windows.len()
                    );
                }
                let snap = dest.snapshot();
                let _ = writeln!(
                    out,
                    "{}: {} counts frames, {} window frames, {} bytes",
                    into.display(),
                    snap.counts.len(),
                    snap.windows.len(),
                    dest.file_bytes()
                );
            }
            StoreAction::Compact(files) => {
                for path in files {
                    let mut store = open(path)?;
                    let before = store.file_bytes();
                    store
                        .compact()
                        .map_err(|e| CliError::Failed(format!("compact failed: {e}")))?;
                    let _ = writeln!(
                        out,
                        "compacted {}: {} -> {} bytes",
                        path.display(),
                        before,
                        store.file_bytes()
                    );
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn action_and_files_required() {
        let err = StoreOptions::parse(&[]).unwrap_err();
        assert!(err.to_string().contains("needs an action"));
        let err = StoreOptions::parse(&raw(&["stats"])).unwrap_err();
        assert!(err.to_string().contains("at least one FILE"));
    }

    #[test]
    fn merge_requires_into() {
        let err = StoreOptions::parse(&raw(&["merge", "a.hbbp"])).unwrap_err();
        assert!(err.to_string().contains("--into"));
        let opts = StoreOptions::parse(&raw(&["merge", "--into", "out.hbbp", "a.hbbp"])).unwrap();
        assert_eq!(
            opts.action,
            StoreAction::Merge {
                into: PathBuf::from("out.hbbp"),
                sources: vec![PathBuf::from("a.hbbp")],
            }
        );
    }
}

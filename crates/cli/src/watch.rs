//! `hbbp watch` — tail a recording through the windowed online analyzer
//! and flag windows whose instruction mix diverges from a stored
//! baseline epoch beyond a tolerance.
//!
//! The baseline is one epoch of a [`hbbp_store::ProfileStore`] segment
//! (see `hbbp query epochs` for what a daemon store holds), reduced to
//! its canonical per-epoch fold — the same fold the daemon's `DRIFT` op
//! diffs. Each closed window's mix is compared against it with
//! [`hbbp_core::MixDrift`]; a window whose total-variation divergence
//! exceeds `--tolerance` prints a `DRIFT` line. A replayed baseline
//! stays quiet; an injected phase shift is flagged.

use crate::analyze::{check_mmap, expected_modules};
use crate::args::{parse_all, CliError};
use crate::common::{analyzer_for, parse_rule, parse_window, WorkloadOptions};
use crate::registry;
use hbbp_core::{HybridRule, MixDrift, OnlineAnalyzer, Window};
use hbbp_perf::{PerfRecord, RecordView, StreamDecoder, ViewSink};
use hbbp_program::MnemonicMix;
use hbbp_store::{ProfileStore, StoreIdentity};
use hbbp_workloads::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Parsed `hbbp watch` options.
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// The recording file to tail.
    pub recording: PathBuf,
    /// The baseline store segment (`.hbbp` file).
    pub baseline: PathBuf,
    /// Baseline epoch; `None` = the store's latest.
    pub epoch: Option<u32>,
    /// Window size for the online analyzer.
    pub window: Window,
    /// Divergence above which a window is flagged.
    pub tolerance: f64,
    /// Workload the recording was collected from.
    pub workload: WorkloadOptions,
    /// The hybrid decision rule.
    pub rule: HybridRule,
}

/// Usage text for `hbbp watch`.
pub fn usage() -> String {
    format!(
        "usage: hbbp watch RECORDING --baseline STORE.hbbp [options]\n\
         \n\
         Tail a recording through the windowed online analyzer and compare each\n\
         window's instruction mix against a stored baseline epoch. Windows whose\n\
         total-variation divergence exceeds --tolerance are flagged as DRIFT;\n\
         a stream that replays the baseline stays quiet.\n\
         \n\
         options:\n\
         \x20 --baseline FILE     baseline store segment (required)\n\
         \x20 --epoch N           baseline epoch (default: the store's latest)\n\
         \x20 --window samples:<n>|cycles:<n>\n\
         \x20                     watch window (default samples:512)\n\
         \x20 --tolerance T       divergence threshold in (0, 1] (default 0.05)\n\
         \x20 --rule paper|cutoff=<n>|always-ebs|always-lbr\n\
         \x20                     hybrid decision rule (default paper)\n\
         {}\n\
         \n\
         The workload (and scale) must match both the recording and the store:\n\
         the recording's memory map and the store's identity are checked.\n\
         \n\
         {}",
        WorkloadOptions::usage_lines(),
        registry::registry_help()
    )
}

impl WatchOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<WatchOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut recording: Option<PathBuf> = None;
        let mut baseline: Option<PathBuf> = None;
        let mut epoch = None;
        let mut window = Window::Samples(512);
        let mut tolerance = 0.05f64;
        let mut rule = HybridRule::paper_default();
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--baseline" => baseline = Some(PathBuf::from(s.value("--baseline")?)),
                "--epoch" => epoch = Some(s.value_parsed("--epoch", "an epoch number")?),
                "--window" => window = parse_window(&s.value("--window")?)?,
                "--tolerance" => {
                    let t: f64 = s.value_parsed("--tolerance", "a divergence in (0, 1]")?;
                    if !(t > 0.0 && t <= 1.0) {
                        return Err(CliError::Usage(
                            "--tolerance must be a divergence in (0, 1]".into(),
                        ));
                    }
                    tolerance = t;
                }
                "--rule" => rule = parse_rule(&s.value("--rule")?)?,
                other if !other.starts_with("--") => {
                    if recording.replace(PathBuf::from(other)).is_some() {
                        return Err(CliError::Usage(format!(
                            "unexpected extra operand `{other}` (one recording per run)"
                        )));
                    }
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let Some(recording) = recording else {
            return Err(CliError::Usage(
                "watch needs a RECORDING file operand".into(),
            ));
        };
        let Some(baseline) = baseline else {
            return Err(CliError::Usage(
                "watch needs --baseline STORE.hbbp (a store segment to diff against)".into(),
            ));
        };
        Ok(WatchOptions {
            recording,
            baseline,
            epoch,
            window,
            tolerance,
            workload,
            rule,
        })
    }

    /// Load the baseline epoch's canonical fold as a mnemonic mix.
    fn baseline_mix(
        &self,
        analyzer: &hbbp_core::Analyzer,
        w: &Workload,
    ) -> Result<(u32, MnemonicMix), CliError> {
        let store = ProfileStore::open(&self.baseline).map_err(|e| {
            CliError::Failed(format!("cannot open {}: {e}", self.baseline.display()))
        })?;
        if store.identity() != Some(&StoreIdentity::of_workload(w, analyzer.map())) {
            return Err(CliError::Failed(format!(
                "store {} was not recorded from workload `{}` — wrong --workload or --scale?",
                self.baseline.display(),
                w.name()
            )));
        }
        let snapshot = store.snapshot();
        let epochs = snapshot.epochs();
        let Some(&latest) = epochs.last() else {
            return Err(CliError::Failed(format!(
                "store {} holds no epochs to watch against",
                self.baseline.display()
            )));
        };
        let epoch = self.epoch.unwrap_or(latest);
        if !epochs.contains(&epoch) {
            return Err(CliError::Failed(format!(
                "store {} has no epoch {epoch} (epochs: {epochs:?})",
                self.baseline.display()
            )));
        }
        Ok((epoch, analyzer.mix(&snapshot.epoch_aggregate(epoch))))
    }

    /// Execute: returns the watch report (`DRIFT` lines + summary).
    pub fn run(&self) -> Result<String, CliError> {
        use std::io::Read as _;
        let w = self.workload.build()?;
        let analyzer = analyzer_for(&w)?;
        let (epoch, baseline) = self.baseline_mix(&analyzer, &w)?;

        let file = std::fs::File::open(&self.recording).map_err(|e| {
            CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
        })?;
        let mut reader = std::io::BufReader::new(file);
        let online = OnlineAnalyzer::new(&analyzer, self.workload.periods, self.rule.clone())
            .with_window(self.window);
        let mut sink = WatchSink {
            online,
            expected: expected_modules(&w),
            workload: &w,
            err: None,
        };
        let mut decoder = StreamDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = reader.read(&mut buf).map_err(|e| {
                CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
            })?;
            if n == 0 {
                break;
            }
            decoder.feed(&buf[..n]);
            let decoded = decoder.decode_into(&mut sink);
            if let Some(err) = sink.err.take() {
                return Err(err);
            }
            decoded.map_err(|e| {
                CliError::Failed(format!(
                    "{} is not a decodable recording: {e}",
                    self.recording.display()
                ))
            })?;
        }
        decoder.finish().map_err(|e| {
            CliError::Failed(format!("{} ends mid-record: {e}", self.recording.display()))
        })?;
        let outcome = sink.online.finish();

        let mut out = String::new();
        let mut flagged = 0usize;
        let mut max_divergence = 0.0f64;
        for win in &outcome.windows {
            let mix = analyzer.mix(&win.analysis.hbbp.bbec);
            let drift = MixDrift::between(&baseline, &mix);
            let divergence = drift.divergence();
            max_divergence = max_divergence.max(divergence);
            if divergence > self.tolerance {
                flagged += 1;
                let mover = drift
                    .top_movers(1)
                    .first()
                    .map(|row| format!(" (top mover {} {:+.1})", row.mnemonic, row.delta))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "DRIFT window {} [{}..{} cycles] divergence {:.4} > {:.4}{mover}",
                    win.index, win.start_cycles, win.end_cycles, divergence, self.tolerance
                );
            }
        }
        let _ = writeln!(
            out,
            "watched {} windows against epoch {epoch}: {flagged} flagged \
             (max divergence {max_divergence:.4}, tolerance {:.4})",
            outcome.windows.len(),
            self.tolerance
        );
        Ok(out)
    }
}

/// [`ViewSink`] forwarding views into the windowed analyzer after the
/// same MMAP-against-layout check `hbbp analyze` performs.
struct WatchSink<'s, 'a> {
    online: OnlineAnalyzer<'a>,
    expected: Vec<(String, u64, u64)>,
    workload: &'s Workload,
    err: Option<CliError>,
}

impl ViewSink for WatchSink<'_, '_> {
    fn view(&mut self, view: &RecordView<'_>) {
        if self.err.is_some() {
            return;
        }
        if let RecordView::Other(PerfRecord::Mmap {
            addr,
            len,
            filename,
            ..
        }) = view
        {
            if let Err(e) = check_mmap(&self.expected, filename, *addr, *len, self.workload) {
                self.err = Some(e);
                return;
            }
        }
        self.online.push_view(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn recording_and_baseline_are_required() {
        let err = WatchOptions::parse(&raw(&["--baseline", "s.hbbp"])).unwrap_err();
        assert!(err.to_string().contains("RECORDING"));
        let err = WatchOptions::parse(&raw(&["p.bin"])).unwrap_err();
        assert_eq!(
            err.to_string(),
            "watch needs --baseline STORE.hbbp (a store segment to diff against)"
        );
    }

    #[test]
    fn tolerance_must_be_a_proper_fraction() {
        for bad in ["0", "0.0", "1.5", "-0.2"] {
            let err =
                WatchOptions::parse(&raw(&["p.bin", "--baseline", "s.hbbp", "--tolerance", bad]))
                    .unwrap_err();
            assert_eq!(
                err.to_string(),
                "--tolerance must be a divergence in (0, 1]",
                "{bad}"
            );
        }
    }

    #[test]
    fn defaults_flow_through() {
        let opts = WatchOptions::parse(&raw(&["p.bin", "--baseline", "s.hbbp"])).unwrap();
        assert_eq!(opts.window, Window::Samples(512));
        assert_eq!(opts.tolerance, 0.05);
        assert_eq!(opts.epoch, None);
        let opts = WatchOptions::parse(&raw(&[
            "p.bin",
            "--baseline",
            "s.hbbp",
            "--epoch",
            "2",
            "--window",
            "cycles:1000",
        ]))
        .unwrap();
        assert_eq!(opts.epoch, Some(2));
        assert_eq!(opts.window, Window::TimeCycles(1000));
    }
}

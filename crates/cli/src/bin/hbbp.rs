//! The `hbbp` binary: a shim over [`hbbp_cli::main_impl`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(hbbp_cli::main_impl(&args));
}

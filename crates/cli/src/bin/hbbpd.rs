//! The standalone `hbbpd` collection daemon binary — a shim over
//! `hbbp serve` so the daemon gets the same flag parser, `--help`, and
//! wire-protocol usage block as the rest of the CLI.

use hbbp_cli::args::CliError;
use hbbp_cli::serve::{self, ServeOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match ServeOptions::parse(&args).and_then(|opts| opts.run()) {
        Ok(()) => 0,
        Err(CliError::Help) => {
            print!("{}", serve::usage("hbbpd"));
            0
        }
        Err(CliError::Usage(message)) => {
            eprintln!("hbbpd: {message}");
            eprint!("\n{}", serve::usage("hbbpd"));
            2
        }
        Err(CliError::Failed(message)) => {
            eprintln!("hbbpd: {message}");
            1
        }
    };
    std::process::exit(code);
}

//! `hbbp analyze` — instruction mixes from a recording: batch
//! (`Analyzer::analyze_fused`) or windowed (`OnlineAnalyzer` timelines).
//!
//! By default the recording streams through the zero-copy fused
//! decode→analyze path ([`StreamDecoder::decode_into`] driving
//! [`OnlineAnalyzer::push_view`]); `--no-fused` switches to the owned
//! record path (batch `codec::read` + `analyze_fused`, or streaming
//! `next_record` + `push_owned` with `--window`), kept as the
//! field-diagnosable oracle. Both produce bit-identical results.

use crate::args::{invalid, parse_all, CliError};
use crate::common::{analyzer_for, parse_rule, parse_window, WorkloadOptions};
use crate::registry;
use crate::render::{self, Format, TimelineRow};
use hbbp_core::{Analysis, HybridRule, OnlineAnalyzer, OnlineOutcome, Window};
use hbbp_perf::{PerfData, PerfRecord, RecordView, StreamDecoder, ViewSink};
use hbbp_sim::EventSpec;
use hbbp_workloads::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Which estimate to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// The combined HBBP estimate (the paper's result).
    #[default]
    Hbbp,
    /// EBS-only.
    Ebs,
    /// LBR-only.
    Lbr,
}

impl Estimator {
    fn parse(value: &str) -> Result<Estimator, CliError> {
        match value {
            "hbbp" => Ok(Estimator::Hbbp),
            "ebs" => Ok(Estimator::Ebs),
            "lbr" => Ok(Estimator::Lbr),
            _ => Err(invalid("--estimator", value, "hbbp|ebs|lbr")),
        }
    }

    fn pick<'a>(&self, analysis: &'a Analysis) -> &'a hbbp_program::Bbec {
        match self {
            Estimator::Hbbp => &analysis.hbbp.bbec,
            Estimator::Ebs => &analysis.ebs.bbec,
            Estimator::Lbr => &analysis.lbr.bbec,
        }
    }
}

/// Parsed `hbbp analyze` options.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// The recording file to analyze.
    pub recording: PathBuf,
    /// Workload the recording was collected from (for the static block
    /// map); periods must match the collection.
    pub workload: WorkloadOptions,
    /// `None` = one whole-recording batch analysis; `Some` = per-window
    /// timeline.
    pub window: Option<Window>,
    /// The hybrid decision rule.
    pub rule: HybridRule,
    /// Output format.
    pub format: Format,
    /// Mix rows to list in text/csv output (0 = all).
    pub top: usize,
    /// Which estimate to render.
    pub estimator: Estimator,
    /// Ingest through the zero-copy fused decode→analyze path (default);
    /// `--no-fused` selects the owned-record oracle path instead.
    pub fused: bool,
}

/// Usage text for `hbbp analyze`.
pub fn usage() -> String {
    format!(
        "usage: hbbp analyze RECORDING [options]\n\
         \n\
         Produce instruction mixes from a perf recording. Without --window this\n\
         is one whole-recording batch analysis (Analyzer::analyze_fused); with\n\
         --window the recording streams through the online analyzer and each\n\
         window becomes one row of a mix timeline.\n\
         \n\
         options:\n\
         \x20 --window samples:<n>|cycles:<n>\n\
         \x20                     per-window timeline instead of one analysis\n\
         \x20 --rule paper|cutoff=<n>|always-ebs|always-lbr\n\
         \x20                     hybrid decision rule (default paper)\n\
         \x20 --estimator hbbp|ebs|lbr\n\
         \x20                     which estimate to render (default hbbp)\n\
         \x20 --format text|json|csv (default text)\n\
         \x20 --top N             mnemonics to list in text/csv (default 20, 0 = all)\n\
         \x20 --fused             zero-copy fused decode+analyze ingest (default)\n\
         \x20 --no-fused          owned-record ingest path (the fused path's oracle)\n\
         {}\n\
         \n\
         The workload (and scale) must match what `hbbp record` ran: the\n\
         recording's memory map is checked against the workload layout.\n\
         \n\
         {}",
        WorkloadOptions::usage_lines(),
        registry::registry_help()
    )
}

impl AnalyzeOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<AnalyzeOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut recording: Option<PathBuf> = None;
        let mut window = None;
        let mut rule = HybridRule::paper_default();
        let mut format = Format::Text;
        let mut top = 20usize;
        let mut estimator = Estimator::Hbbp;
        let mut fused = true;
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--window" => window = Some(parse_window(&s.value("--window")?)?),
                "--rule" => rule = parse_rule(&s.value("--rule")?)?,
                "--format" => format = Format::parse(&s.value("--format")?)?,
                "--top" => top = s.value_parsed("--top", "a row count")?,
                "--estimator" => estimator = Estimator::parse(&s.value("--estimator")?)?,
                "--fused" => fused = true,
                "--no-fused" => fused = false,
                other if !other.starts_with("--") => {
                    if recording.replace(PathBuf::from(other)).is_some() {
                        return Err(CliError::Usage(format!(
                            "unexpected extra operand `{other}` (one recording per run)"
                        )));
                    }
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let Some(recording) = recording else {
            return Err(CliError::Usage(
                "analyze needs a RECORDING file operand".into(),
            ));
        };
        Ok(AnalyzeOptions {
            recording,
            workload,
            window,
            rule,
            format,
            top,
            estimator,
            fused,
        })
    }

    /// Execute: returns the rendered output.
    pub fn run(&self) -> Result<String, CliError> {
        let w = self.workload.build()?;
        let analyzer = analyzer_for(&w)?;
        match (self.window, self.fused) {
            (None, false) => {
                let bytes = std::fs::read(&self.recording).map_err(|e| {
                    CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
                })?;
                let data = hbbp_perf::codec::read(&bytes).map_err(|e| {
                    CliError::Failed(format!(
                        "{} is not a decodable recording: {e}",
                        self.recording.display()
                    ))
                })?;
                verify_layout(&data, &w)?;
                let analysis = analyzer.analyze_fused(&data, self.workload.periods, &self.rule);
                let ebs_event = EventSpec::inst_retired_prec_dist();
                let lbr_event = EventSpec::br_inst_retired_near_taken();
                let ebs = data.samples().filter(|s| s.event == ebs_event).count() as u64;
                let lbr = data.samples().filter(|s| s.event == lbr_event).count() as u64;
                Ok(self.render_whole(&analyzer, data.len() as u64, ebs, lbr, &analysis))
            }
            (None, true) => {
                let outcome = self.stream_outcome(&analyzer, None, &w)?;
                let records = outcome.records_seen;
                let (ebs, lbr) = outcome
                    .windows
                    .first()
                    .map(|win| (win.ebs_samples, win.lbr_samples))
                    .unwrap_or((0, 0));
                let analysis = outcome.into_analysis().expect("unwindowed run");
                Ok(self.render_whole(&analyzer, records, ebs, lbr, &analysis))
            }
            (Some(window), fused) => {
                let outcome = if fused {
                    self.stream_outcome(&analyzer, Some(window), &w)?
                } else {
                    self.stream_outcome_owned(&analyzer, window, &w)?
                };
                let rows: Vec<TimelineRow> = outcome
                    .windows
                    .iter()
                    .map(|win| TimelineRow {
                        index: win.index as u64,
                        start_cycles: win.start_cycles,
                        end_cycles: win.end_cycles,
                        ebs_samples: win.ebs_samples,
                        lbr_samples: win.lbr_samples,
                        mix: analyzer.mix(self.estimator.pick(&win.analysis)),
                    })
                    .collect();
                Ok(render::render_timeline(&rows, self.format))
            }
        }
    }

    /// Render the whole-recording analysis (shared by the batch oracle
    /// and the fused streaming path, which must print byte-identical
    /// output for the same recording).
    fn render_whole(
        &self,
        analyzer: &hbbp_core::Analyzer,
        records: u64,
        ebs: u64,
        lbr: u64,
        analysis: &Analysis,
    ) -> String {
        let mix = analyzer.mix(self.estimator.pick(analysis));
        match self.format {
            Format::Text => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "analysis of {} ({records} records, ebs {ebs} / lbr {lbr} samples)",
                    self.recording.display(),
                );
                let _ = writeln!(
                    out,
                    "estimated instructions: {:.1}\n",
                    analyzer.total_instructions(self.estimator.pick(analysis))
                );
                out.push_str(&render::render_mix(&mix, self.top, Format::Text));
                out
            }
            Format::Json => format!(
                "{{\"records\": {records}, \"ebs_samples\": {ebs}, \"lbr_samples\": {lbr}, \
                 \"total\": {}, \"mnemonics\": {}}}\n",
                render::json_f64(mix.total()),
                render::mix_json_entries(&mix)
            ),
            Format::Csv => render::render_mix(&mix, self.top, Format::Csv),
        }
    }

    /// Stream the recording through the online analyzer on the fused
    /// zero-copy path: file chunks feed the decoder, and
    /// [`StreamDecoder::decode_into`] hands borrowed record views
    /// straight to [`OnlineAnalyzer::push_view`] — no owned `PerfRecord`
    /// is ever materialized. MMAP records are checked against the
    /// workload layout as they stream past, exactly like the owned path.
    fn stream_outcome(
        &self,
        analyzer: &hbbp_core::Analyzer,
        window: Option<Window>,
        w: &Workload,
    ) -> Result<OnlineOutcome, CliError> {
        use std::io::Read as _;
        let file = std::fs::File::open(&self.recording).map_err(|e| {
            CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
        })?;
        let mut reader = std::io::BufReader::new(file);
        let mut online = OnlineAnalyzer::new(analyzer, self.workload.periods, self.rule.clone());
        if let Some(window) = window {
            online = online.with_window(window);
        }
        let mut sink = CheckSink {
            online,
            expected: expected_modules(w),
            workload: w,
            err: None,
        };
        let mut decoder = StreamDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = reader.read(&mut buf).map_err(|e| {
                CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
            })?;
            if n == 0 {
                break;
            }
            decoder.feed(&buf[..n]);
            let decoded = decoder.decode_into(&mut sink);
            if let Some(err) = sink.err.take() {
                return Err(err);
            }
            decoded.map_err(|e| {
                CliError::Failed(format!(
                    "{} is not a decodable recording: {e}",
                    self.recording.display()
                ))
            })?;
        }
        decoder.finish().map_err(|e| {
            // The windowed streaming path has always blamed a truncated
            // tail specifically; the whole-recording path mirrors the
            // batch oracle's wording for every decode failure.
            if window.is_some() {
                CliError::Failed(format!("{} ends mid-record: {e}", self.recording.display()))
            } else {
                CliError::Failed(format!(
                    "{} is not a decodable recording: {e}",
                    self.recording.display()
                ))
            }
        })?;
        Ok(sink.online.finish())
    }

    /// The owned-record twin of [`stream_outcome`]: decode to
    /// `PerfRecord`s and `push_owned` them. Kept verbatim as the
    /// `--no-fused` oracle for the fused path.
    ///
    /// [`stream_outcome`]: AnalyzeOptions::stream_outcome
    fn stream_outcome_owned(
        &self,
        analyzer: &hbbp_core::Analyzer,
        window: Window,
        w: &Workload,
    ) -> Result<OnlineOutcome, CliError> {
        use std::io::Read as _;
        let file = std::fs::File::open(&self.recording).map_err(|e| {
            CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
        })?;
        let mut reader = std::io::BufReader::new(file);
        let expected = expected_modules(w);
        let mut online = OnlineAnalyzer::new(analyzer, self.workload.periods, self.rule.clone())
            .with_window(window);
        let mut decoder = StreamDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = reader.read(&mut buf).map_err(|e| {
                CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
            })?;
            if n == 0 {
                break;
            }
            decoder.feed(&buf[..n]);
            loop {
                match decoder.next_record() {
                    Ok(Some(record)) => {
                        if let PerfRecord::Mmap {
                            addr,
                            len,
                            filename,
                            ..
                        } = &record
                        {
                            check_mmap(&expected, filename, *addr, *len, w)?;
                        }
                        online.push_owned(record);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return Err(CliError::Failed(format!(
                            "{} is not a decodable recording: {e}",
                            self.recording.display()
                        )))
                    }
                }
            }
        }
        decoder.finish().map_err(|e| {
            CliError::Failed(format!("{} ends mid-record: {e}", self.recording.display()))
        })?;
        Ok(online.finish())
    }
}

/// [`ViewSink`] that verifies MMAP records against the workload layout
/// before forwarding every view to the online analyzer. The first
/// mismatch is stored (a sink callback cannot early-return through the
/// decoder) and checked by the caller after each `decode_into`.
struct CheckSink<'s, 'a> {
    online: OnlineAnalyzer<'a>,
    expected: Vec<(String, u64, u64)>,
    workload: &'s Workload,
    err: Option<CliError>,
}

impl ViewSink for CheckSink<'_, '_> {
    fn view(&mut self, view: &RecordView<'_>) {
        if self.err.is_some() {
            return;
        }
        if let RecordView::Other(PerfRecord::Mmap {
            addr,
            len,
            filename,
            ..
        }) = view
        {
            if let Err(e) = check_mmap(&self.expected, filename, *addr, *len, self.workload) {
                self.err = Some(e);
                return;
            }
        }
        self.online.push_view(view);
    }
}

/// The workload's `(module name, base, len)` spans — what every MMAP
/// record of a matching recording must name.
pub(crate) fn expected_modules(w: &Workload) -> Vec<(String, u64, u64)> {
    w.program()
        .modules()
        .iter()
        .map(|m| {
            let (base, end) = w.layout().module_range(m.id());
            (m.name().to_owned(), base, end - base)
        })
        .collect()
}

/// Reject an MMAP record that names a module span the workload does not
/// have — a mismatched `--workload`/`--scale` would silently produce an
/// empty or wrong mix otherwise.
pub(crate) fn check_mmap(
    expected: &[(String, u64, u64)],
    name: &str,
    base: u64,
    len: u64,
    w: &Workload,
) -> Result<(), CliError> {
    if expected
        .iter()
        .any(|(n, b, l)| n == name && *b == base && *l == len)
    {
        return Ok(());
    }
    Err(CliError::Failed(format!(
        "recording maps module {name} at {base:#x}+{len:#x}, which does not match \
         workload `{}` — wrong --workload or --scale?",
        w.name()
    )))
}

/// Check a materialized recording's memory map against the workload
/// layout (the batch-path twin of the streaming check in
/// [`AnalyzeOptions::windowed_rows`]).
pub(crate) fn verify_layout(data: &PerfData, w: &Workload) -> Result<(), CliError> {
    let expected = expected_modules(w);
    for (name, base, len) in data.mmaps() {
        check_mmap(&expected, name, base, len, w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn recording_operand_is_required() {
        let err = AnalyzeOptions::parse(&raw(&["--format", "json"])).unwrap_err();
        assert!(err.to_string().contains("RECORDING"));
    }

    #[test]
    fn one_recording_only() {
        let err = AnalyzeOptions::parse(&raw(&["a.bin", "b.bin"])).unwrap_err();
        assert!(err.to_string().contains("extra operand `b.bin`"));
    }

    #[test]
    fn window_flag_flows_through() {
        let opts = AnalyzeOptions::parse(&raw(&["p.bin", "--window", "samples:1000"])).unwrap();
        assert_eq!(opts.window, Some(Window::Samples(1000)));
        assert_eq!(opts.recording, PathBuf::from("p.bin"));
    }

    #[test]
    fn wrong_workload_is_detected_in_both_batch_and_windowed_modes() {
        // Record phased, analyze as test40: the mmap check must fire in
        // every ingest mode — fused and owned, whole-recording and
        // windowed.
        let dir = std::env::temp_dir().join(format!("hbbp-cli-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.bin");
        crate::record::RecordOptions::parse(&raw(&[
            "--workload",
            "phased",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap()
        .run()
        .unwrap();
        for extra in [
            &[][..],
            &["--window", "samples:100"][..],
            &["--no-fused"][..],
            &["--window", "samples:100", "--no-fused"][..],
        ] {
            let mut argv = vec![path.to_str().unwrap(), "--workload", "test40"];
            argv.extend_from_slice(extra);
            let err = AnalyzeOptions::parse(&raw(&argv))
                .unwrap()
                .run()
                .unwrap_err();
            assert!(
                err.to_string().contains("wrong --workload or --scale?"),
                "mode {extra:?}: {err}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

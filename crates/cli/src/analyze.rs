//! `hbbp analyze` — instruction mixes from a recording: batch
//! (`Analyzer::analyze_fused`) or windowed (`OnlineAnalyzer` timelines).

use crate::args::{invalid, parse_all, CliError};
use crate::common::{analyzer_for, parse_rule, parse_window, WorkloadOptions};
use crate::registry;
use crate::render::{self, Format, TimelineRow};
use hbbp_core::{Analysis, HybridRule, OnlineAnalyzer, Window};
use hbbp_perf::{PerfData, StreamDecoder};
use hbbp_sim::EventSpec;
use hbbp_workloads::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Which estimate to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// The combined HBBP estimate (the paper's result).
    #[default]
    Hbbp,
    /// EBS-only.
    Ebs,
    /// LBR-only.
    Lbr,
}

impl Estimator {
    fn parse(value: &str) -> Result<Estimator, CliError> {
        match value {
            "hbbp" => Ok(Estimator::Hbbp),
            "ebs" => Ok(Estimator::Ebs),
            "lbr" => Ok(Estimator::Lbr),
            _ => Err(invalid("--estimator", value, "hbbp|ebs|lbr")),
        }
    }

    fn pick<'a>(&self, analysis: &'a Analysis) -> &'a hbbp_program::Bbec {
        match self {
            Estimator::Hbbp => &analysis.hbbp.bbec,
            Estimator::Ebs => &analysis.ebs.bbec,
            Estimator::Lbr => &analysis.lbr.bbec,
        }
    }
}

/// Parsed `hbbp analyze` options.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// The recording file to analyze.
    pub recording: PathBuf,
    /// Workload the recording was collected from (for the static block
    /// map); periods must match the collection.
    pub workload: WorkloadOptions,
    /// `None` = one whole-recording batch analysis; `Some` = per-window
    /// timeline.
    pub window: Option<Window>,
    /// The hybrid decision rule.
    pub rule: HybridRule,
    /// Output format.
    pub format: Format,
    /// Mix rows to list in text/csv output (0 = all).
    pub top: usize,
    /// Which estimate to render.
    pub estimator: Estimator,
}

/// Usage text for `hbbp analyze`.
pub fn usage() -> String {
    format!(
        "usage: hbbp analyze RECORDING [options]\n\
         \n\
         Produce instruction mixes from a perf recording. Without --window this\n\
         is one whole-recording batch analysis (Analyzer::analyze_fused); with\n\
         --window the recording streams through the online analyzer and each\n\
         window becomes one row of a mix timeline.\n\
         \n\
         options:\n\
         \x20 --window samples:<n>|cycles:<n>\n\
         \x20                     per-window timeline instead of one analysis\n\
         \x20 --rule paper|cutoff=<n>|always-ebs|always-lbr\n\
         \x20                     hybrid decision rule (default paper)\n\
         \x20 --estimator hbbp|ebs|lbr\n\
         \x20                     which estimate to render (default hbbp)\n\
         \x20 --format text|json|csv (default text)\n\
         \x20 --top N             mnemonics to list in text/csv (default 20, 0 = all)\n\
         {}\n\
         \n\
         The workload (and scale) must match what `hbbp record` ran: the\n\
         recording's memory map is checked against the workload layout.\n\
         \n\
         {}",
        WorkloadOptions::usage_lines(),
        registry::registry_help()
    )
}

impl AnalyzeOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<AnalyzeOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut recording: Option<PathBuf> = None;
        let mut window = None;
        let mut rule = HybridRule::paper_default();
        let mut format = Format::Text;
        let mut top = 20usize;
        let mut estimator = Estimator::Hbbp;
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--window" => window = Some(parse_window(&s.value("--window")?)?),
                "--rule" => rule = parse_rule(&s.value("--rule")?)?,
                "--format" => format = Format::parse(&s.value("--format")?)?,
                "--top" => top = s.value_parsed("--top", "a row count")?,
                "--estimator" => estimator = Estimator::parse(&s.value("--estimator")?)?,
                other if !other.starts_with("--") => {
                    if recording.replace(PathBuf::from(other)).is_some() {
                        return Err(CliError::Usage(format!(
                            "unexpected extra operand `{other}` (one recording per run)"
                        )));
                    }
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        let Some(recording) = recording else {
            return Err(CliError::Usage(
                "analyze needs a RECORDING file operand".into(),
            ));
        };
        Ok(AnalyzeOptions {
            recording,
            workload,
            window,
            rule,
            format,
            top,
            estimator,
        })
    }

    /// Execute: returns the rendered output.
    pub fn run(&self) -> Result<String, CliError> {
        let w = self.workload.build()?;
        let analyzer = analyzer_for(&w)?;
        match self.window {
            None => {
                let bytes = std::fs::read(&self.recording).map_err(|e| {
                    CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
                })?;
                let data = hbbp_perf::codec::read(&bytes).map_err(|e| {
                    CliError::Failed(format!(
                        "{} is not a decodable recording: {e}",
                        self.recording.display()
                    ))
                })?;
                verify_layout(&data, &w)?;
                let analysis = analyzer.analyze_fused(&data, self.workload.periods, &self.rule);
                let mix = analyzer.mix(self.estimator.pick(&analysis));
                let ebs_event = EventSpec::inst_retired_prec_dist();
                let lbr_event = EventSpec::br_inst_retired_near_taken();
                let ebs = data.samples().filter(|s| s.event == ebs_event).count();
                let lbr = data.samples().filter(|s| s.event == lbr_event).count();
                Ok(match self.format {
                    Format::Text => {
                        let mut out = String::new();
                        let _ = writeln!(
                            out,
                            "analysis of {} ({} records, ebs {ebs} / lbr {lbr} samples)",
                            self.recording.display(),
                            data.len(),
                        );
                        let _ = writeln!(
                            out,
                            "estimated instructions: {:.1}\n",
                            analyzer.total_instructions(self.estimator.pick(&analysis))
                        );
                        out.push_str(&render::render_mix(&mix, self.top, Format::Text));
                        out
                    }
                    Format::Json => format!(
                        "{{\"records\": {}, \"ebs_samples\": {ebs}, \"lbr_samples\": {lbr}, \
                         \"total\": {}, \"mnemonics\": {}}}\n",
                        data.len(),
                        render::json_f64(mix.total()),
                        render::mix_json_entries(&mix)
                    ),
                    Format::Csv => render::render_mix(&mix, self.top, Format::Csv),
                })
            }
            Some(window) => {
                let rows = self.windowed_rows(&analyzer, window, &w)?;
                Ok(render::render_timeline(&rows, self.format))
            }
        }
    }

    /// Stream the recording through the windowed online analyzer,
    /// reading the file in fixed-size chunks — peak memory stays bounded
    /// by the current window, never the recording.
    fn windowed_rows(
        &self,
        analyzer: &hbbp_core::Analyzer,
        window: Window,
        w: &Workload,
    ) -> Result<Vec<TimelineRow>, CliError> {
        use std::io::Read as _;
        let file = std::fs::File::open(&self.recording).map_err(|e| {
            CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
        })?;
        let mut reader = std::io::BufReader::new(file);
        let expected = expected_modules(w);
        let mut online = OnlineAnalyzer::new(analyzer, self.workload.periods, self.rule.clone())
            .with_window(window);
        let mut decoder = StreamDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = reader.read(&mut buf).map_err(|e| {
                CliError::Failed(format!("cannot read {}: {e}", self.recording.display()))
            })?;
            if n == 0 {
                break;
            }
            decoder.feed(&buf[..n]);
            loop {
                match decoder.next_record() {
                    Ok(Some(record)) => {
                        if let hbbp_perf::PerfRecord::Mmap {
                            addr,
                            len,
                            filename,
                            ..
                        } = &record
                        {
                            check_mmap(&expected, filename, *addr, *len, w)?;
                        }
                        online.push_owned(record);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return Err(CliError::Failed(format!(
                            "{} is not a decodable recording: {e}",
                            self.recording.display()
                        )))
                    }
                }
            }
        }
        decoder.finish().map_err(|e| {
            CliError::Failed(format!("{} ends mid-record: {e}", self.recording.display()))
        })?;
        let outcome = online.finish();
        Ok(outcome
            .windows
            .iter()
            .map(|win| TimelineRow {
                index: win.index as u64,
                start_cycles: win.start_cycles,
                end_cycles: win.end_cycles,
                ebs_samples: win.ebs_samples,
                lbr_samples: win.lbr_samples,
                mix: analyzer.mix(self.estimator.pick(&win.analysis)),
            })
            .collect())
    }
}

/// The workload's `(module name, base, len)` spans — what every MMAP
/// record of a matching recording must name.
fn expected_modules(w: &Workload) -> Vec<(String, u64, u64)> {
    w.program()
        .modules()
        .iter()
        .map(|m| {
            let (base, end) = w.layout().module_range(m.id());
            (m.name().to_owned(), base, end - base)
        })
        .collect()
}

/// Reject an MMAP record that names a module span the workload does not
/// have — a mismatched `--workload`/`--scale` would silently produce an
/// empty or wrong mix otherwise.
fn check_mmap(
    expected: &[(String, u64, u64)],
    name: &str,
    base: u64,
    len: u64,
    w: &Workload,
) -> Result<(), CliError> {
    if expected
        .iter()
        .any(|(n, b, l)| n == name && *b == base && *l == len)
    {
        return Ok(());
    }
    Err(CliError::Failed(format!(
        "recording maps module {name} at {base:#x}+{len:#x}, which does not match \
         workload `{}` — wrong --workload or --scale?",
        w.name()
    )))
}

/// Check a materialized recording's memory map against the workload
/// layout (the batch-path twin of the streaming check in
/// [`AnalyzeOptions::windowed_rows`]).
pub(crate) fn verify_layout(data: &PerfData, w: &Workload) -> Result<(), CliError> {
    let expected = expected_modules(w);
    for (name, base, len) in data.mmaps() {
        check_mmap(&expected, name, base, len, w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn recording_operand_is_required() {
        let err = AnalyzeOptions::parse(&raw(&["--format", "json"])).unwrap_err();
        assert!(err.to_string().contains("RECORDING"));
    }

    #[test]
    fn one_recording_only() {
        let err = AnalyzeOptions::parse(&raw(&["a.bin", "b.bin"])).unwrap_err();
        assert!(err.to_string().contains("extra operand `b.bin`"));
    }

    #[test]
    fn window_flag_flows_through() {
        let opts = AnalyzeOptions::parse(&raw(&["p.bin", "--window", "samples:1000"])).unwrap();
        assert_eq!(opts.window, Some(Window::Samples(1000)));
        assert_eq!(opts.recording, PathBuf::from("p.bin"));
    }

    #[test]
    fn wrong_workload_is_detected_in_both_batch_and_windowed_modes() {
        // Record phased, analyze as test40: the mmap check must fire on
        // the batch path AND the streaming (windowed) path.
        let dir = std::env::temp_dir().join(format!("hbbp-cli-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.bin");
        crate::record::RecordOptions::parse(&raw(&[
            "--workload",
            "phased",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap()
        .run()
        .unwrap();
        for extra in [&[][..], &["--window", "samples:100"][..]] {
            let mut argv = vec![path.to_str().unwrap(), "--workload", "test40"];
            argv.extend_from_slice(extra);
            let err = AnalyzeOptions::parse(&raw(&argv))
                .unwrap()
                .run()
                .unwrap_err();
            assert!(
                err.to_string().contains("wrong --workload or --scale?"),
                "mode {extra:?}: {err}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

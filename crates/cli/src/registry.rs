//! The named-workload registry: every workload the CLI can record, by the
//! name users pass to `--workload`.
//!
//! The registry is the CLI-facing index over `hbbp-workloads`: the
//! phase-switching streaming workload, the OO particle simulation, the
//! fitter and clforward build variants, the kernel-module benchmark, the
//! hydro extreme, and all 29 SPEC-like suite benchmarks by name.

use crate::args::{invalid, CliError};
use hbbp_workloads::{
    clforward, fitter, hydro_post, kernel_benchmark, phased, phased_client, spec, test40,
    ClVariant, FitterVariant, Scale, Workload,
};

/// The non-SPEC workload names, in presentation order.
pub const WORKLOAD_NAMES: [&str; 11] = [
    "phased",
    "phased-client:<n>",
    "test40",
    "fitter-x87",
    "fitter-sse",
    "fitter-avx",
    "fitter-avx-broken",
    "fitter-avx-fix",
    "clforward-before",
    "clforward-after",
    "kernel",
];

/// Resolve a `--scale` value.
pub fn parse_scale(value: &str) -> Result<Scale, CliError> {
    match value {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        _ => Err(invalid("--scale", value, "tiny|small|full")),
    }
}

/// Resolve a workload name (see [`WORKLOAD_NAMES`]; SPEC benchmarks
/// resolve by their suite name, e.g. `astar` or `x264ref`).
pub fn resolve(name: &str, scale: Scale) -> Result<Workload, CliError> {
    let w = match name {
        "phased" => phased(scale),
        "test40" => test40(scale),
        "fitter-x87" => fitter(FitterVariant::X87, scale),
        "fitter-sse" => fitter(FitterVariant::Sse, scale),
        "fitter-avx" => fitter(FitterVariant::Avx, scale),
        "fitter-avx-broken" => fitter(FitterVariant::AvxBroken, scale),
        "fitter-avx-fix" => fitter(FitterVariant::AvxFix, scale),
        "clforward-before" => clforward(ClVariant::Before, scale),
        "clforward-after" => clforward(ClVariant::After, scale),
        "kernel" => kernel_benchmark(scale),
        "hydro" => hydro_post(scale),
        _ => {
            if let Some(client) = name.strip_prefix("phased-client:") {
                let n: u32 = client.parse().map_err(|_| {
                    invalid("--workload", name, "phased-client:<n> with a numeric n")
                })?;
                phased_client(scale, n)
            } else if spec::SPEC_NAMES.contains(&name) {
                spec::workload_for(name, scale)
            } else {
                return Err(CliError::Usage(format!(
                    "unknown workload `{name}` (see `hbbp record --help` for the registry)"
                )));
            }
        }
    };
    Ok(w)
}

/// The registry block shared by the subcommand usage texts.
pub fn registry_help() -> String {
    let mut out = String::from("workloads:\n  ");
    out.push_str(&WORKLOAD_NAMES.join(" | "));
    out.push_str(" | hydro\n  plus the SPEC-like suite by name: ");
    out.push_str(&spec::SPEC_NAMES.join(", "));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_resolves() {
        for name in WORKLOAD_NAMES {
            let name = if name.starts_with("phased-client") {
                "phased-client:3"
            } else {
                name
            };
            let w = resolve(name, Scale::Tiny).unwrap();
            assert!(!w.name().is_empty());
        }
        assert!(resolve("hydro", Scale::Tiny).is_ok());
    }

    #[test]
    fn spec_names_resolve() {
        let w = resolve("astar", Scale::Tiny).unwrap();
        assert_eq!(w.name(), "astar");
    }

    #[test]
    fn unknown_name_is_a_usage_error() {
        let err = resolve("nope", Scale::Tiny).unwrap_err();
        assert!(err.to_string().contains("unknown workload `nope`"));
    }

    #[test]
    fn malformed_client_suffix_is_rejected() {
        let err = resolve("phased-client:x", Scale::Tiny).unwrap_err();
        assert!(err.to_string().contains("phased-client:<n>"));
    }
}

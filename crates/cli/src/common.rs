//! Option pieces shared by several subcommands: workload selection,
//! `--window` specs, hybrid-rule selection, and sampling periods.

use crate::args::{invalid, ArgStream, CliError};
use crate::registry;
use hbbp_core::{Analyzer, HybridRule, SamplingPeriods, Window};
use hbbp_program::ImageView;
use hbbp_workloads::{Scale, Workload};

/// Parse a `--window` spec: `samples:N` or `cycles:N`.
///
/// The exact error wording is pinned by the table-driven tests in
/// `tests/cli_args.rs`.
pub fn parse_window(value: &str) -> Result<Window, CliError> {
    parse_window_flag("--window", value)
}

/// [`parse_window`] under a different flag name (`hbbp synth` calls the
/// same grammar `--window-size`; its `--window` is a timeline index).
pub fn parse_window_flag(flag: &str, value: &str) -> Result<Window, CliError> {
    let expected = "samples:<n> or cycles:<n> with n > 0";
    let Some((kind, n)) = value.split_once(':') else {
        return Err(invalid(flag, value, expected));
    };
    let n: u64 = n.parse().map_err(|_| invalid(flag, value, expected))?;
    if n == 0 {
        return Err(invalid(flag, value, expected));
    }
    match kind {
        "samples" => Ok(Window::Samples(n)),
        "cycles" => Ok(Window::TimeCycles(n)),
        _ => Err(invalid(flag, value, expected)),
    }
}

/// Parse a `--rule` value: `paper`, `cutoff=N`, `always-ebs`, `always-lbr`.
pub fn parse_rule(value: &str) -> Result<HybridRule, CliError> {
    match value {
        "paper" => Ok(HybridRule::paper_default()),
        "always-ebs" => Ok(HybridRule::AlwaysEbs),
        "always-lbr" => Ok(HybridRule::AlwaysLbr),
        _ => match value.strip_prefix("cutoff=").map(str::parse) {
            Some(Ok(c)) => Ok(HybridRule::LengthCutoff(c)),
            _ => Err(invalid(
                "--rule",
                value,
                "paper|cutoff=<n>|always-ebs|always-lbr",
            )),
        },
    }
}

/// The workload + sampling knobs shared by `record`, `analyze`, `serve`
/// and `report`.
#[derive(Debug, Clone)]
pub struct WorkloadOptions {
    /// Registry name (`--workload`).
    pub workload: String,
    /// Workload scale (`--scale`).
    pub scale: Scale,
    /// Branch-oracle seed override (`--oracle-seed`).
    pub oracle_seed: Option<u64>,
    /// Sampling periods (`--ebs-period` / `--lbr-period`). Defaults match
    /// the daemon and the fleet test constants: 1009 / 211.
    pub periods: SamplingPeriods,
}

impl Default for WorkloadOptions {
    fn default() -> WorkloadOptions {
        WorkloadOptions {
            workload: "phased".to_owned(),
            scale: Scale::Tiny,
            oracle_seed: None,
            periods: SamplingPeriods {
                ebs: 1009,
                lbr: 211,
            },
        }
    }
}

impl WorkloadOptions {
    /// Try to consume one flag; returns `false` when the flag is not one
    /// of this group's.
    pub fn accept(&mut self, flag: &str, s: &mut ArgStream) -> Result<bool, CliError> {
        match flag {
            "--workload" => self.workload = s.value("--workload")?,
            "--scale" => self.scale = registry::parse_scale(&s.value("--scale")?)?,
            "--oracle-seed" => {
                self.oracle_seed = Some(s.value_parsed("--oracle-seed", "a u64 seed")?);
            }
            "--ebs-period" => {
                self.periods.ebs = positive(s.value_parsed("--ebs-period", "a period > 0")?)
                    .ok_or_else(|| CliError::Usage("--ebs-period must be > 0".into()))?;
            }
            "--lbr-period" => {
                self.periods.lbr = positive(s.value_parsed("--lbr-period", "a period > 0")?)
                    .ok_or_else(|| CliError::Usage("--lbr-period must be > 0".into()))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolve the workload from the registry, applying the oracle seed.
    pub fn build(&self) -> Result<Workload, CliError> {
        let w = registry::resolve(&self.workload, self.scale)?;
        Ok(match self.oracle_seed {
            Some(seed) => w.with_oracle_seed(seed),
            None => w,
        })
    }

    /// The usage lines describing this flag group.
    pub fn usage_lines() -> &'static str {
        "  --workload NAME     workload to resolve (default phased)\n\
         \x20 --scale tiny|small|full\n\
         \x20                     workload scale (default tiny)\n\
         \x20 --oracle-seed N     override the branch-oracle seed\n\
         \x20 --ebs-period N      INST_RETIRED sampling period (default 1009)\n\
         \x20 --lbr-period N      BR_INST_RETIRED sampling period (default 211)"
    }
}

fn positive(n: u64) -> Option<u64> {
    (n > 0).then_some(n)
}

/// Build the analysis engine for a workload (static discovery over the
/// on-disk text images).
pub fn analyzer_for(workload: &Workload) -> Result<Analyzer, CliError> {
    Analyzer::from_images(
        &workload.images(ImageView::Disk),
        workload.layout().symbols(),
    )
    .map_err(|e| CliError::Failed(format!("static discovery failed: {e:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_specs_parse() {
        assert_eq!(parse_window("samples:1000").unwrap(), Window::Samples(1000));
        assert_eq!(parse_window("cycles:50").unwrap(), Window::TimeCycles(50));
    }

    #[test]
    fn malformed_window_specs_are_usage_errors() {
        for bad in ["samples", "samples:", "samples:x", "samples:0", "ticks:5"] {
            let err = parse_window(bad).unwrap_err();
            assert_eq!(
                err.to_string(),
                format!("invalid value `{bad}` for --window: expected samples:<n> or cycles:<n> with n > 0"),
            );
        }
    }

    #[test]
    fn rules_parse() {
        assert!(matches!(
            parse_rule("paper").unwrap(),
            HybridRule::LengthCutoff(_)
        ));
        assert!(matches!(
            parse_rule("cutoff=7").unwrap(),
            HybridRule::LengthCutoff(7)
        ));
        assert!(matches!(
            parse_rule("always-ebs").unwrap(),
            HybridRule::AlwaysEbs
        ));
        assert!(matches!(
            parse_rule("always-lbr").unwrap(),
            HybridRule::AlwaysLbr
        ));
        assert!(parse_rule("cutoff=x").is_err());
        assert!(parse_rule("tree").is_err());
    }
}

//! `hbbp serve` — run the `hbbpd` collection daemon with proper flag
//! parsing (also the implementation behind the standalone `hbbpd`
//! binary).

use crate::args::{parse_all, CliError};
use crate::common::{analyzer_for, parse_rule, parse_window, WorkloadOptions};
use crate::registry;
use hbbp_core::{HybridRule, Window};
use hbbp_store::{DaemonConfig, DaemonHandle, StoreIdentity};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;

/// Parsed `hbbp serve` options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Workload whose address space the daemon serves.
    pub workload: WorkloadOptions,
    /// Store partitions (each owned by one writer thread).
    pub shards: usize,
    /// Directory holding the partition files.
    pub dir: PathBuf,
    /// Timeline windowing for each connection (`None` disables WINDOW
    /// frames).
    pub window: Option<Window>,
    /// The hybrid decision rule.
    pub rule: HybridRule,
    /// Poll-loop worker threads (`0` = auto-size to the machine).
    pub workers: usize,
    /// Per-shard writer queue bound in messages (`0` = built-in default).
    pub queue_depth: usize,
    /// When set, serve the metrics registry as a plain-TCP Prometheus
    /// text endpoint on this address (connect-and-read, no HTTP).
    pub metrics_addr: Option<SocketAddr>,
}

/// Usage text for `hbbp serve` (and `hbbpd`). `program` names the binary
/// in the synopsis line. The wire-protocol listing is generated from
/// `hbbp_store::wire::PROTOCOL_OPS` — the same source of truth behind
/// `docs/PROTOCOL.md` — so the two binaries and the spec cannot drift.
pub fn usage(program: &str) -> String {
    format!(
        "usage: {program} [options]\n\
         \n\
         Serve the collection daemon for one workload's address space on a\n\
         loopback ephemeral port (printed on stdout). Collectors stream perf\n\
         recordings in (`hbbp record --daemon`), queries read the canonical\n\
         aggregate back (`hbbp query`). Stop it with `hbbp query shutdown`.\n\
         \n\
         options:\n\
         \x20 --shards N          store partitions, one writer thread each (default 4)\n\
         \x20 --dir PATH          partition file directory (default hbbpd-store)\n\
         \x20 --workers N         poll-loop worker threads; 0 = auto (default 0)\n\
         \x20 --queue-depth N     per-shard writer queue bound in messages;\n\
         \x20                     0 = default ({queue_depth})\n\
         \x20 --window samples:<n>|cycles:<n>|none\n\
         \x20                     per-connection timeline windowing (default samples:512)\n\
         \x20 --rule paper|cutoff=<n>|always-ebs|always-lbr\n\
         \x20                     hybrid decision rule (default paper)\n\
         \x20 --metrics-addr HOST:PORT\n\
         \x20                     also serve the self-observability registry as a\n\
         \x20                     plain-TCP Prometheus text endpoint (connect, read,\n\
         \x20                     close; see docs/OBSERVABILITY.md)\n\
         {workload}\n\
         \n\
         wire protocol (length-prefixed `op u8 | len u32 LE | payload`;\n\
         see docs/PROTOCOL.md for the full spec):\n\
         {protocol}\
         \n\
         {registry}",
        queue_depth = hbbp_store::DEFAULT_QUEUE_DEPTH,
        workload = WorkloadOptions::usage_lines(),
        protocol = hbbp_store::wire::protocol_listing(),
        registry = registry::registry_help()
    )
}

impl ServeOptions {
    /// Parse the subcommand arguments.
    pub fn parse(args: &[String]) -> Result<ServeOptions, CliError> {
        let mut workload = WorkloadOptions::default();
        let mut shards = 4usize;
        let mut dir = PathBuf::from("hbbpd-store");
        let mut window = Some(Window::Samples(512));
        let mut rule = HybridRule::paper_default();
        let mut workers = 0usize;
        let mut queue_depth = 0usize;
        let mut metrics_addr: Option<SocketAddr> = None;
        parse_all(args, |flag, s| {
            if workload.accept(flag, s)? {
                return Ok(Some(()));
            }
            match flag {
                "--shards" => {
                    shards = s.value_parsed("--shards", "a partition count > 0")?;
                    if shards == 0 {
                        return Err(CliError::Usage("--shards must be > 0".into()));
                    }
                }
                "--dir" => dir = PathBuf::from(s.value("--dir")?),
                "--workers" => {
                    workers = s.value_parsed("--workers", "a worker count (0 = auto)")?;
                }
                "--queue-depth" => {
                    queue_depth =
                        s.value_parsed("--queue-depth", "a queue bound in messages (0 = default)")?;
                }
                "--window" => {
                    let v = s.value("--window")?;
                    window = if v == "none" {
                        None
                    } else {
                        Some(parse_window(&v)?)
                    };
                }
                "--rule" => rule = parse_rule(&s.value("--rule")?)?,
                "--metrics-addr" => {
                    metrics_addr =
                        Some(s.value_parsed("--metrics-addr", "a socket address (host:port)")?);
                }
                other => return Err(s.unknown(other)),
            }
            Ok(Some(()))
        })?;
        Ok(ServeOptions {
            workload,
            shards,
            dir,
            window,
            rule,
            workers,
            queue_depth,
            metrics_addr,
        })
    }

    /// Spawn the daemon (non-blocking) and return its handle plus the
    /// startup banner.
    pub fn spawn(&self) -> Result<(DaemonHandle, String), CliError> {
        let w = self.workload.build()?;
        let analyzer = analyzer_for(&w)?;
        let identity = StoreIdentity::of_workload(&w, analyzer.map());
        let handle = hbbp_store::spawn(DaemonConfig {
            analyzer,
            identity,
            periods: self.workload.periods,
            rule: self.rule.clone(),
            window: self.window,
            shards: self.shards,
            dir: self.dir.clone(),
            workers: self.workers,
            queue_depth: self.queue_depth,
            metrics: true,
        })
        .map_err(|e| CliError::Failed(format!("daemon spawn failed: {e:?}")))?;
        let mut banner = String::new();
        let _ = writeln!(banner, "hbbpd listening on {}", handle.addr());
        if let Some(addr) = self.metrics_addr {
            let listener = TcpListener::bind(addr).map_err(|e| {
                CliError::Failed(format!("metrics endpoint bind failed on {addr}: {e}"))
            })?;
            let bound = listener.local_addr().unwrap_or(addr);
            // Detached: the endpoint thread lives for the process; it
            // holds only a registry handle and dies with the daemon.
            let _ = hbbp_obs::serve_text_endpoint(listener, handle.metrics());
            let _ = writeln!(banner, "metrics endpoint on {bound} (prometheus text)");
        }
        let _ = writeln!(
            banner,
            "workload={} scale={:?} shards={} workers={} queue-depth={} periods=ebs:{}/lbr:{} window={}",
            w.name(),
            self.workload.scale,
            self.shards,
            match self.workers {
                0 => "auto".to_owned(),
                n => n.to_string(),
            },
            match self.queue_depth {
                0 => hbbp_store::DEFAULT_QUEUE_DEPTH,
                n => n,
            },
            self.workload.periods.ebs,
            self.workload.periods.lbr,
            match self.window {
                Some(Window::Samples(n)) => format!("samples:{n}"),
                Some(Window::TimeCycles(n)) => format!("cycles:{n}"),
                None => "none".to_owned(),
            }
        );
        Ok((handle, banner))
    }

    /// Execute: spawn, print the banner, and block until a client sends
    /// SHUTDOWN.
    pub fn run(&self) -> Result<(), CliError> {
        let (handle, banner) = self.spawn()?;
        print!("{banner}");
        handle.wait();
        println!("hbbpd stopped");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_match_the_old_hbbpd() {
        let opts = ServeOptions::parse(&[]).unwrap();
        assert_eq!(opts.shards, 4);
        assert_eq!(opts.dir, PathBuf::from("hbbpd-store"));
        assert_eq!(opts.window, Some(Window::Samples(512)));
        assert_eq!(opts.workers, 0, "auto-sized pool by default");
        assert_eq!(opts.queue_depth, 0, "built-in queue bound by default");
    }

    #[test]
    fn window_none_disables_timeline() {
        let opts = ServeOptions::parse(&raw(&["--window", "none"])).unwrap();
        assert_eq!(opts.window, None);
    }

    #[test]
    fn zero_shards_is_rejected() {
        let err = ServeOptions::parse(&raw(&["--shards", "0"])).unwrap_err();
        assert_eq!(err.to_string(), "--shards must be > 0");
    }

    #[test]
    fn pool_flags_parse() {
        let opts = ServeOptions::parse(&raw(&["--workers", "3", "--queue-depth", "64"])).unwrap();
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.queue_depth, 64);
    }

    #[test]
    fn usage_lists_the_wire_ops() {
        let u = usage("hbbpd");
        for op in [
            "STREAM",
            "QUERY_MIX",
            "QUERY_TOP",
            "STATS",
            "COMPACT",
            "SHUTDOWN",
        ] {
            assert!(u.contains(op), "usage must document {op}");
        }
    }

    #[test]
    fn usage_listing_is_the_protocol_source_of_truth() {
        // Both binaries print the same generated listing — drift between
        // `hbbp serve --help`, `hbbpd --help` and the protocol tables is
        // structurally impossible.
        let listing = hbbp_store::wire::protocol_listing();
        assert!(usage("hbbpd").contains(&listing));
        assert!(usage("hbbp serve").contains(&listing));
    }
}

//! The end-to-end loopback acceptance scenario, golden-pinned:
//!
//! `hbbp record --out` → `hbbp serve` → `hbbp record --daemon` →
//! `hbbp query mix|top|stats` → `hbbp query shutdown` →
//! `hbbp store merge|stats` → `hbbp report` (recording and store),
//! all through the same library entry points the binary dispatches to.
//!
//! Two layers of pinning:
//!
//! * every subcommand's rendered output (paths normalized) is compared
//!   byte-for-byte against `tests/golden/loopback_tiny.txt` (re-bless
//!   with `BLESS=1 cargo test -p hbbp-cli --test loopback`);
//! * the aggregate mix the daemon reports, and the merged store's
//!   aggregate, are asserted **bit-identical** (`f64` bits) to
//!   `Analyzer::analyze_fused` over the same recording.

use hbbp_cli::common::analyzer_for;
use hbbp_cli::query::QueryOptions;
use hbbp_cli::record::RecordOptions;
use hbbp_cli::render;
use hbbp_cli::report::ReportOptions;
use hbbp_cli::serve::ServeOptions;
use hbbp_cli::store_cmd::StoreOptions;
use hbbp_core::{HybridRule, SamplingPeriods};
use hbbp_program::MnemonicMix;
use std::path::PathBuf;

fn raw(args: &[String]) -> Vec<String> {
    args.to_vec()
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/loopback_tiny.txt")
}

fn assert_golden(actual: &str) {
    let path = golden_path();
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate with BLESS=1 cargo test -p hbbp-cli --test loopback",
            path.display()
        )
    });
    if expected != actual {
        let diverge = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
        panic!(
            "loopback output drifted at line {}:\n  expected: {}\n  actual:   {}\n\
             Re-bless with BLESS=1 cargo test -p hbbp-cli --test loopback if intentional.",
            diverge + 1,
            expected.lines().nth(diverge).unwrap_or("<eof>"),
            actual.lines().nth(diverge).unwrap_or("<eof>"),
        );
    }
}

/// Replace every `(high N)` value with `(high _)`.
fn scrub_high_water(text: &str) -> String {
    let mut out = String::new();
    let mut rest = text;
    while let Some(at) = rest.find("(high ") {
        let tail = &rest[at + 6..];
        let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
        out.push_str(&rest[..at + 6]);
        out.push('_');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn assert_mix_bit_identical(got: &MnemonicMix, want: &MnemonicMix, what: &str) {
    let mnems = got.union_mnemonics(want);
    for m in mnems {
        assert_eq!(
            got.get(m).to_bits(),
            want.get(m).to_bits(),
            "{what}: {m} differs ({} vs {})",
            got.get(m),
            want.get(m)
        );
    }
}

#[test]
fn record_serve_query_report_loopback() {
    let tmp = std::env::temp_dir().join(format!("hbbp-cli-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let normalize = |s: &str| s.replace(tmp.to_str().unwrap(), "<TMP>");
    let recording = tmp.join("p.bin");
    let store_dir = tmp.join("store");
    let mut transcript = String::new();

    // 1. record → file.
    let rec = RecordOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--out",
        recording.to_str().unwrap(),
    ]))
    .unwrap();
    transcript.push_str(&render::section(
        "record to file",
        &normalize(&rec.run().unwrap()),
    ));

    // 2. serve.
    let serve = ServeOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--shards",
        "2",
        "--dir",
        store_dir.to_str().unwrap(),
    ]))
    .unwrap();
    let (handle, _banner) = serve.spawn().unwrap();
    let addr = handle.addr().to_string();

    // 3. record → daemon: deterministic seeds, so the stream the daemon
    // ingests is byte-identical to the file recording.
    let rec_daemon = RecordOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--daemon",
        &addr,
        "--source",
        "1",
    ]))
    .unwrap();
    transcript.push_str(&render::section(
        "record to daemon",
        &normalize(&rec_daemon.run().unwrap()),
    ));

    // 4. query mix / top / stats.
    let query = |parts: &[&str]| -> String {
        let mut argv = args(parts);
        argv.extend(args(&["--addr", &addr]));
        QueryOptions::parse(&raw(&argv)).unwrap().run().unwrap()
    };
    let mix_text = query(&["mix"]);
    transcript.push_str(&render::section("query mix", &mix_text));
    transcript.push_str(&render::section("query top", &query(&["top", "--k", "5"])));
    // Queue high-water marks depend on writer drain timing (the windows
    // and counts messages of one stream may or may not overlap in the
    // queue), so scrub them before pinning.
    transcript.push_str(&render::section(
        "query stats",
        &scrub_high_water(&query(&["stats"])),
    ));

    // Capture the raw aggregate mix before shutting the daemon down.
    let daemon_mix = hbbp_store::StoreClient::new(handle.addr())
        .query_mix()
        .unwrap();

    // 5. shutdown (joins the daemon).
    transcript.push_str(&render::section("query shutdown", &query(&["shutdown"])));
    handle.wait();

    // 6. report from the recording.
    let report_rec = ReportOptions::parse(&args(&[
        "--recording",
        recording.to_str().unwrap(),
        "--workload",
        "phased",
        "--scale",
        "tiny",
    ]))
    .unwrap();
    transcript.push_str(&render::section(
        "report recording",
        &normalize(&report_rec.run().unwrap()),
    ));

    // 7. offline store maintenance: merge both partitions, stat the
    // result, report its aggregate and timeline.
    let merged = tmp.join("merged.hbbp");
    let part = |i: usize| store_dir.join(format!("part-{i}.hbbp"));
    let merge = StoreOptions::parse(&args(&[
        "merge",
        "--into",
        merged.to_str().unwrap(),
        part(0).to_str().unwrap(),
        part(1).to_str().unwrap(),
    ]))
    .unwrap();
    transcript.push_str(&render::section(
        "store merge",
        &normalize(&merge.run().unwrap()),
    ));
    let stats = StoreOptions::parse(&args(&["stats", merged.to_str().unwrap()])).unwrap();
    transcript.push_str(&render::section(
        "store stats",
        &normalize(&stats.run().unwrap()),
    ));
    let report_store = ReportOptions::parse(&args(&[
        "--store",
        merged.to_str().unwrap(),
        "--workload",
        "phased",
        "--scale",
        "tiny",
    ]))
    .unwrap();
    let report_store_text = report_store.run().unwrap();
    transcript.push_str(&render::section(
        "report store",
        &normalize(&report_store_text),
    ));
    let timeline = ReportOptions::parse(&args(&[
        "--store",
        merged.to_str().unwrap(),
        "--timeline",
        "--format",
        "csv",
    ]))
    .unwrap();
    transcript.push_str(&render::section(
        "report store timeline (csv)",
        &timeline.run().unwrap(),
    ));

    // ---- bit-identity: daemon aggregate == analyze_fused == merged store ----
    let workload = hbbp_workloads::phased(hbbp_workloads::Scale::Tiny);
    let analyzer = analyzer_for(&workload).unwrap();
    let bytes = std::fs::read(&recording).unwrap();
    let data = hbbp_perf::codec::read(&bytes).unwrap();
    let periods = SamplingPeriods {
        ebs: 1009,
        lbr: 211,
    };
    let batch = analyzer.analyze_fused(&data, periods, &HybridRule::paper_default());
    let expected_mix = analyzer.mix(&batch.hbbp.bbec);

    assert_mix_bit_identical(
        &daemon_mix,
        &expected_mix,
        "daemon aggregate vs analyze_fused",
    );

    let merged_store = hbbp_store::ProfileStore::open(&merged).unwrap();
    let merged_mix = analyzer.mix(&merged_store.snapshot().aggregate());
    assert_mix_bit_identical(&merged_mix, &expected_mix, "merged store vs analyze_fused");

    // The rendered outputs agree too: querying the daemon and rendering
    // analyze_fused locally produce the same table.
    assert_eq!(
        mix_text,
        render::render_mix(&expected_mix, 20, render::Format::Text),
        "rendered daemon mix differs from rendered analyze_fused mix"
    );

    assert_golden(&transcript);
    let _ = std::fs::remove_dir_all(&tmp);
}

/// The observability acceptance criterion: `hbbp query metrics`
/// against a live daemon returns a non-empty snapshot covering the
/// acceptor, worker, writer and decoder metric families, in every
/// format — and the `--metrics-addr` endpoint serves the same
/// registry as a Prometheus text scrape.
#[test]
fn query_metrics_covers_the_daemon_families() {
    let tmp = std::env::temp_dir().join(format!("hbbp-cli-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();

    let serve = ServeOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--shards",
        "2",
        "--metrics-addr",
        "127.0.0.1:0",
        "--dir",
        tmp.join("store").to_str().unwrap(),
    ]))
    .unwrap();
    let (handle, banner) = serve.spawn().unwrap();
    let addr = handle.addr().to_string();

    RecordOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--daemon",
        &addr,
        "--source",
        "1",
    ]))
    .unwrap()
    .run()
    .unwrap();

    let query = |parts: &[&str]| -> String {
        let mut argv = args(parts);
        argv.extend(args(&["--addr", &addr]));
        QueryOptions::parse(&raw(&argv)).unwrap().run().unwrap()
    };

    // Text (default): one [family] section per daemon thread role, with
    // live values behind them.
    let text = query(&["metrics"]);
    for family in ["[acceptor]", "[worker]", "[writer]", "[decoder]"] {
        assert!(text.contains(family), "text output lost {family}:\n{text}");
    }
    assert!(!text.contains("no metrics"), "registry must be enabled");

    // The snapshot itself is non-empty and carries real counts.
    let snap = hbbp_store::StoreClient::new(handle.addr())
        .query_metrics()
        .unwrap();
    assert!(!snap.is_empty());
    assert!(snap.counter("acceptor.accepts").unwrap() >= 1);
    assert!(snap.counter("decoder.records").unwrap() > 0);
    assert_eq!(snap.counter("writer.counts_appended"), Some(1));

    // JSON and Prometheus renderings of the same snapshot.
    let json = query(&["metrics", "--format", "json"]);
    assert!(json.contains("\"name\": \"decoder.records\""));
    let prom = query(&["metrics", "--format", "prometheus"]);
    assert!(prom.contains("# TYPE hbbp_decoder_records counter"));
    assert!(prom.contains("hbbp_writer_queue_depth{shard=\"1\"}"));

    // The scrape endpoint answers a bare TCP connect with the same
    // exposition; its bound port is printed in the serve banner.
    let metrics_addr = banner
        .lines()
        .find_map(|l| l.strip_prefix("metrics endpoint on "))
        .and_then(|rest| rest.split_whitespace().next())
        .expect("banner announces the metrics endpoint");
    let mut scrape = String::new();
    std::io::Read::read_to_string(
        &mut std::net::TcpStream::connect(metrics_addr).unwrap(),
        &mut scrape,
    )
    .unwrap();
    assert!(scrape.contains("# TYPE hbbp_acceptor_accepts counter"));
    assert!(scrape.contains("hbbp_writer_counts_appended 1"));

    query(&["shutdown"]);
    handle.wait();
    let _ = std::fs::remove_dir_all(&tmp);
}

/// The acceptance-criteria command pair, end to end through the real
/// binary: `hbbp record --workload phased --out p.bin && hbbp analyze
/// p.bin --window samples:1000 --format json`.
#[test]
fn real_binary_record_then_windowed_analyze() {
    let tmp = std::env::temp_dir().join(format!("hbbp-cli-bin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let recording = tmp.join("p.bin");
    let bin = env!("CARGO_BIN_EXE_hbbp");

    let record = std::process::Command::new(bin)
        .args(["record", "--workload", "phased", "--out"])
        .arg(&recording)
        .output()
        .unwrap();
    assert!(
        record.status.success(),
        "record failed: {}",
        String::from_utf8_lossy(&record.stderr)
    );
    assert!(String::from_utf8_lossy(&record.stdout).contains("recorded phased"));

    let analyze = std::process::Command::new(bin)
        .arg("analyze")
        .arg(&recording)
        .args(["--window", "samples:1000", "--format", "json"])
        .output()
        .unwrap();
    assert!(
        analyze.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&analyze.stderr)
    );
    let json = String::from_utf8_lossy(&analyze.stdout);
    assert!(json.trim_start().starts_with('['), "timeline JSON array");
    assert!(json.contains("\"window\": 0"));
    assert!(json.contains("\"mnemonics\":"));

    // Usage-error and help exit codes through the real binary.
    let help = std::process::Command::new(bin)
        .arg("--help")
        .output()
        .unwrap();
    assert!(help.status.success());
    let bad = std::process::Command::new(bin)
        .args(["analyze", "p.bin", "--window", "bogus:1"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("invalid value `bogus:1` for --window"));

    let _ = std::fs::remove_dir_all(&tmp);
}

//! Table-driven coverage of every subcommand's flag matrix: one row per
//! accepted shape and per diagnosable mistake, with the exact error
//! wording pinned for the malformed `--window` specs and the missing
//! socket-address cases.

use hbbp_cli::args::CliError;
use hbbp_cli::{analyze, query, record, report, serve, store_cmd, synth, watch};

/// What a parse attempt should produce.
enum Want {
    /// Parses cleanly.
    Ok,
    /// `--help` requested.
    Help,
    /// A usage error whose message contains this needle.
    Err(&'static str),
}

struct Case {
    command: &'static str,
    args: &'static [&'static str],
    want: Want,
}

fn parse(command: &str, args: &[&str]) -> Result<(), CliError> {
    let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    match command {
        "record" => record::RecordOptions::parse(&args).map(|_| ()),
        "analyze" => analyze::AnalyzeOptions::parse(&args).map(|_| ()),
        "serve" => serve::ServeOptions::parse(&args).map(|_| ()),
        "query" => query::QueryOptions::parse(&args).map(|_| ()),
        "store" => store_cmd::StoreOptions::parse(&args).map(|_| ()),
        "report" => report::ReportOptions::parse(&args).map(|_| ()),
        "watch" => watch::WatchOptions::parse(&args).map(|_| ()),
        "synth" => synth::SynthOptions::parse(&args).map(|_| ()),
        other => panic!("unknown command {other}"),
    }
}

const MATRIX: &[Case] = &[
    // ---- record ----
    Case {
        command: "record",
        args: &["--out", "p.bin"],
        want: Want::Ok,
    },
    Case {
        command: "record",
        args: &[
            "--out",
            "p.bin",
            "--workload",
            "test40",
            "--scale",
            "small",
            "--cpu-seed",
            "7",
            "--pid",
            "42",
            "--oracle-seed",
            "9",
            "--ebs-period",
            "2003",
            "--lbr-period",
            "401",
        ],
        want: Want::Ok,
    },
    Case {
        command: "record",
        args: &["--daemon", "127.0.0.1:4000", "--source", "3"],
        want: Want::Ok,
    },
    Case {
        command: "record",
        args: &[],
        want: Want::Err("exactly one of --out FILE or --daemon ADDR"),
    },
    Case {
        command: "record",
        args: &["--out", "p.bin", "--daemon", "127.0.0.1:4000"],
        want: Want::Err("exactly one of"),
    },
    Case {
        command: "record",
        args: &["--out", "p.bin", "--daemon", "not-an-addr"],
        want: Want::Err("invalid value `not-an-addr` for --daemon: expected a socket address"),
    },
    Case {
        command: "record",
        args: &["--out", "p.bin", "--scale", "huge"],
        want: Want::Err("invalid value `huge` for --scale: expected tiny|small|full"),
    },
    Case {
        command: "record",
        args: &["--out", "p.bin", "--ebs-period", "0"],
        want: Want::Err("--ebs-period must be > 0"),
    },
    Case {
        command: "record",
        args: &["--out", "p.bin", "--lbr-period", "zero"],
        want: Want::Err("invalid value `zero` for --lbr-period"),
    },
    Case {
        command: "record",
        args: &["--out"],
        want: Want::Err("flag --out expects a value"),
    },
    Case {
        command: "record",
        args: &["--frobnicate"],
        want: Want::Err("unknown flag `--frobnicate`"),
    },
    Case {
        command: "record",
        args: &["--help"],
        want: Want::Help,
    },
    // ---- analyze ----
    Case {
        command: "analyze",
        args: &["p.bin"],
        want: Want::Ok,
    },
    Case {
        command: "analyze",
        args: &[
            "p.bin",
            "--window",
            "samples:1000",
            "--format",
            "json",
            "--rule",
            "cutoff=18",
            "--estimator",
            "ebs",
            "--top",
            "0",
        ],
        want: Want::Ok,
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--window=cycles:500"],
        want: Want::Ok,
    },
    Case {
        command: "analyze",
        args: &[],
        want: Want::Err("analyze needs a RECORDING file operand"),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--window", "samples"],
        want: Want::Err(
            "invalid value `samples` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--window", "samples:0"],
        want: Want::Err(
            "invalid value `samples:0` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--window", "bogus:10"],
        want: Want::Err(
            "invalid value `bogus:10` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--window", "cycles:many"],
        want: Want::Err("invalid value `cycles:many` for --window"),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--format", "yaml"],
        want: Want::Err("invalid value `yaml` for --format: expected text|json|csv"),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--estimator", "magic"],
        want: Want::Err("invalid value `magic` for --estimator: expected hbbp|ebs|lbr"),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--rule", "sometimes"],
        want: Want::Err("invalid value `sometimes` for --rule"),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--fused"],
        want: Want::Ok,
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--no-fused", "--window", "samples:100"],
        want: Want::Ok,
    },
    Case {
        // The pair is order-insensitive: the last one wins, both parse.
        command: "analyze",
        args: &["p.bin", "--no-fused", "--fused"],
        want: Want::Ok,
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--fused=yes"],
        want: Want::Err("flag --fused takes no value (got `yes`)"),
    },
    Case {
        command: "analyze",
        args: &["p.bin", "--no-fused=1"],
        want: Want::Err("flag --no-fused takes no value (got `1`)"),
    },
    Case {
        command: "analyze",
        args: &["a.bin", "b.bin"],
        want: Want::Err("unexpected extra operand `b.bin`"),
    },
    Case {
        command: "analyze",
        args: &["-h"],
        want: Want::Help,
    },
    // ---- serve ----
    Case {
        command: "serve",
        args: &[],
        want: Want::Ok,
    },
    Case {
        command: "serve",
        args: &[
            "--workload",
            "phased",
            "--shards",
            "8",
            "--dir",
            "/tmp/x",
            "--window",
            "cycles:100000",
            "--rule",
            "always-lbr",
        ],
        want: Want::Ok,
    },
    Case {
        command: "serve",
        args: &["--window", "none"],
        want: Want::Ok,
    },
    Case {
        command: "serve",
        args: &["--shards", "0"],
        want: Want::Err("--shards must be > 0"),
    },
    Case {
        command: "serve",
        args: &["--window", "sometimes:5"],
        want: Want::Err("invalid value `sometimes:5` for --window"),
    },
    Case {
        // Zero-size windows never reach the analyzer: the grammar
        // rejects them (same wording as every other window spec error).
        command: "serve",
        args: &["--window", "cycles:0"],
        want: Want::Err(
            "invalid value `cycles:0` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "serve",
        args: &["--window", "samples:0"],
        want: Want::Err(
            "invalid value `samples:0` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "serve",
        args: &["extra"],
        want: Want::Err("unexpected operand `extra`"),
    },
    Case {
        command: "serve",
        args: &["--help"],
        want: Want::Help,
    },
    // ---- query ----
    Case {
        command: "query",
        args: &["mix", "--addr", "127.0.0.1:4000"],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &[
            "top",
            "--addr",
            "127.0.0.1:4000",
            "--k",
            "5",
            "--format",
            "csv",
        ],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &["stats", "--addr", "127.0.0.1:4000"],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &["compact", "--addr", "127.0.0.1:4000"],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &["shutdown", "--addr", "127.0.0.1:4000"],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &["epochs", "--addr", "127.0.0.1:4000"],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &[
            "drift",
            "--addr",
            "127.0.0.1:4000",
            "--from",
            "0",
            "--to",
            "1",
            "--k",
            "12",
        ],
        want: Want::Ok,
    },
    Case {
        command: "query",
        args: &["drift", "--addr", "127.0.0.1:4000", "--to", "1"],
        want: Want::Err("drift needs --from EPOCH and --to EPOCH"),
    },
    Case {
        command: "query",
        args: &[
            "drift",
            "--addr",
            "127.0.0.1:4000",
            "--from",
            "x",
            "--to",
            "1",
        ],
        want: Want::Err("invalid value `x` for --from: expected an epoch number"),
    },
    Case {
        command: "query",
        args: &["--addr", "127.0.0.1:4000"],
        want: Want::Err(
            "query needs an action: mix|top|stats|epochs|drift|metrics|compact|shutdown",
        ),
    },
    Case {
        command: "query",
        args: &["mix"],
        want: Want::Err("query needs --addr HOST:PORT"),
    },
    Case {
        command: "query",
        args: &["mix", "--addr", "localhost"],
        want: Want::Err("invalid value `localhost` for --addr: expected a socket address"),
    },
    Case {
        command: "query",
        args: &["mix", "--addr"],
        want: Want::Err("flag --addr expects a value"),
    },
    Case {
        command: "query",
        args: &["mix", "stats", "--addr", "127.0.0.1:4000"],
        want: Want::Err("unexpected operand `stats`"),
    },
    Case {
        // An unknown flag written as `--flag=value` reports "unknown
        // flag", not "takes no value" — the handler's error wins.
        command: "query",
        args: &["mix", "--addr", "127.0.0.1:4000", "--workload=phased"],
        want: Want::Err("unknown flag `--workload`"),
    },
    Case {
        command: "query",
        args: &["--help"],
        want: Want::Help,
    },
    // ---- store ----
    Case {
        command: "store",
        args: &["stats", "part-0.hbbp", "part-1.hbbp"],
        want: Want::Ok,
    },
    Case {
        command: "store",
        args: &["merge", "--into", "out.hbbp", "a.hbbp", "b.hbbp"],
        want: Want::Ok,
    },
    Case {
        command: "store",
        args: &["compact", "a.hbbp"],
        want: Want::Ok,
    },
    Case {
        command: "store",
        args: &[],
        want: Want::Err("store needs an action: stats|merge|compact"),
    },
    Case {
        command: "store",
        args: &["stats"],
        want: Want::Err("store stats needs at least one FILE operand"),
    },
    Case {
        command: "store",
        args: &["merge", "a.hbbp"],
        want: Want::Err("store merge needs --into OUT"),
    },
    Case {
        command: "store",
        args: &["vacuum", "a.hbbp"],
        want: Want::Err("unexpected operand `vacuum`"),
    },
    Case {
        command: "store",
        args: &["compact", "--into", "out.hbbp", "a.hbbp"],
        want: Want::Err("--into is only valid with `store merge` (not `store compact`)"),
    },
    Case {
        command: "store",
        args: &["stats", "--into", "out.hbbp", "a.hbbp"],
        want: Want::Err("--into is only valid with `store merge` (not `store stats`)"),
    },
    Case {
        command: "store",
        args: &["--help"],
        want: Want::Help,
    },
    // ---- report ----
    Case {
        command: "report",
        args: &["--recording", "p.bin"],
        want: Want::Ok,
    },
    Case {
        command: "report",
        args: &["--store", "part-0.hbbp", "--timeline", "--format", "csv"],
        want: Want::Ok,
    },
    Case {
        command: "report",
        args: &[
            "--recording",
            "p.bin",
            "--timeline",
            "--window",
            "cycles:1000",
        ],
        want: Want::Ok,
    },
    Case {
        command: "report",
        args: &[],
        want: Want::Err("report needs exactly one of --recording FILE or --store FILE"),
    },
    Case {
        command: "report",
        args: &["--recording", "p.bin", "--store", "s.hbbp"],
        want: Want::Err("exactly one of"),
    },
    Case {
        command: "report",
        args: &["--recording", "p.bin", "--timeline"],
        want: Want::Err("report --timeline over a recording needs --window"),
    },
    Case {
        command: "report",
        args: &["--recording", "p.bin", "--window", "samples:-3"],
        want: Want::Err("invalid value `samples:-3` for --window"),
    },
    Case {
        command: "report",
        args: &["--recording", "p.bin", "--window", "samples:0"],
        want: Want::Err(
            "invalid value `samples:0` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "report",
        args: &["--timeline=yes", "--store", "s.hbbp"],
        want: Want::Err("flag --timeline takes no value (got `yes`)"),
    },
    Case {
        command: "report",
        args: &["--help"],
        want: Want::Help,
    },
    // ---- watch ----
    Case {
        command: "watch",
        args: &["p.bin", "--baseline", "s.hbbp"],
        want: Want::Ok,
    },
    Case {
        command: "watch",
        args: &[
            "p.bin",
            "--baseline",
            "s.hbbp",
            "--epoch",
            "3",
            "--window",
            "samples:256",
            "--tolerance",
            "0.1",
            "--rule",
            "always-ebs",
            "--workload",
            "test40",
        ],
        want: Want::Ok,
    },
    Case {
        command: "watch",
        args: &["--baseline", "s.hbbp"],
        want: Want::Err("watch needs a RECORDING file operand"),
    },
    Case {
        command: "watch",
        args: &["p.bin"],
        want: Want::Err("watch needs --baseline STORE.hbbp"),
    },
    Case {
        command: "watch",
        args: &["p.bin", "--baseline", "s.hbbp", "--window", "samples:0"],
        want: Want::Err(
            "invalid value `samples:0` for --window: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "watch",
        args: &["p.bin", "--baseline", "s.hbbp", "--tolerance", "2"],
        want: Want::Err("--tolerance must be a divergence in (0, 1]"),
    },
    Case {
        command: "watch",
        args: &["p.bin", "--baseline", "s.hbbp", "--epoch", "latest"],
        want: Want::Err("invalid value `latest` for --epoch: expected an epoch number"),
    },
    Case {
        command: "watch",
        args: &["--help"],
        want: Want::Help,
    },
    // ---- synth ----
    Case {
        command: "synth",
        args: &["--store", "s.hbbp"],
        want: Want::Ok,
    },
    Case {
        command: "synth",
        args: &[
            "--store",
            "s.hbbp",
            "--epoch",
            "2",
            "--tolerance",
            "0.05",
            "--max-iters",
            "8",
            "--seed",
            "7",
            "--cpu-seed",
            "11",
            "--blocks",
            "48",
            "--dynamic",
            "200000",
            "--name",
            "int-heavy",
            "--out",
            "spec.json",
            "--format",
            "json",
            "--rule",
            "cutoff=12",
        ],
        want: Want::Ok,
    },
    Case {
        command: "synth",
        args: &["--recording", "p.bin", "--window", "3", "--window-size", "samples:256"],
        want: Want::Ok,
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--window", "0"],
        want: Want::Ok,
    },
    Case {
        command: "synth",
        args: &["--addr", "127.0.0.1:4000"],
        want: Want::Ok,
    },
    Case {
        command: "synth",
        args: &[],
        want: Want::Err(
            "synth needs exactly one of --recording FILE, --store FILE or --addr ADDR",
        ),
    },
    Case {
        command: "synth",
        args: &["--recording", "p.bin", "--store", "s.hbbp"],
        want: Want::Err("exactly one of"),
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--tolerance", "0"],
        want: Want::Err("--tolerance must be a divergence in (0, 1]"),
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--tolerance", "1.5"],
        want: Want::Err("--tolerance must be a divergence in (0, 1]"),
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--tolerance", "lots"],
        want: Want::Err("invalid value `lots` for --tolerance: expected a divergence in (0, 1]"),
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--max-iters", "0"],
        want: Want::Err("--max-iters must be > 0"),
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--window", "first"],
        want: Want::Err("invalid value `first` for --window: expected a window index"),
    },
    Case {
        command: "synth",
        args: &["--recording", "p.bin", "--window", "0", "--window-size", "samples:0"],
        want: Want::Err(
            "invalid value `samples:0` for --window-size: expected samples:<n> or cycles:<n> with n > 0",
        ),
    },
    Case {
        command: "synth",
        args: &["--recording", "p.bin", "--epoch", "1"],
        want: Want::Err("--epoch only applies to a --store target"),
    },
    Case {
        command: "synth",
        args: &["--addr", "127.0.0.1:4000", "--window", "2"],
        want: Want::Err("--window needs a --recording or --store target"),
    },
    Case {
        command: "synth",
        args: &["--store", "s.hbbp", "--epoch", "1", "--window", "2"],
        want: Want::Err("--epoch and --window are mutually exclusive target selections"),
    },
    Case {
        command: "synth",
        args: &["--addr", "nowhere"],
        want: Want::Err("invalid value `nowhere` for --addr: expected a socket address"),
    },
    Case {
        command: "synth",
        args: &["--help"],
        want: Want::Help,
    },
];

#[test]
fn flag_matrix() {
    for (i, case) in MATRIX.iter().enumerate() {
        let got = parse(case.command, case.args);
        match (&case.want, got) {
            (Want::Ok, Ok(())) => {}
            (Want::Help, Err(CliError::Help)) => {}
            (Want::Err(needle), Err(CliError::Usage(message))) => {
                assert!(
                    message.contains(needle),
                    "case {i} ({} {:?}): error `{message}` does not contain `{needle}`",
                    case.command,
                    case.args
                );
            }
            (want, got) => {
                let want = match want {
                    Want::Ok => "Ok".to_owned(),
                    Want::Help => "Help".to_owned(),
                    Want::Err(n) => format!("Usage(..{n}..)"),
                };
                panic!(
                    "case {i} ({} {:?}): wanted {want}, got {got:?}",
                    case.command, case.args
                );
            }
        }
    }
}

#[test]
fn fused_defaults_on_and_last_toggle_wins() {
    let parse = |args: &[&str]| {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        analyze::AnalyzeOptions::parse(&args).unwrap()
    };
    assert!(parse(&["p.bin"]).fused);
    assert!(!parse(&["p.bin", "--no-fused"]).fused);
    assert!(parse(&["p.bin", "--no-fused", "--fused"]).fused);
    assert!(!parse(&["p.bin", "--fused", "--no-fused"]).fused);
}

#[test]
fn workload_registry_errors_surface_at_run_time_not_parse_time() {
    // Workload names resolve lazily (the registry is consulted by run()),
    // so parse accepts any name...
    let args: Vec<String> = ["--out", "p.bin", "--workload", "nope"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let opts = record::RecordOptions::parse(&args).unwrap();
    // ...and run() rejects it with the registry hint.
    let err = opts.run().unwrap_err();
    assert!(err.to_string().contains("unknown workload `nope`"));
}

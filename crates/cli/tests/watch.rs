//! `hbbp watch` acceptance: replaying the recording the baseline was
//! folded from stays quiet, while a client with a genuinely different
//! phase mixture (same binary, different shape) is flagged as DRIFT.

use hbbp_cli::common::analyzer_for;
use hbbp_cli::record::RecordOptions;
use hbbp_cli::watch::WatchOptions;
use hbbp_core::{HybridRule, SamplingPeriods};
use hbbp_perf::PerfSession;
use hbbp_sim::Cpu;
use hbbp_store::{ProfileStore, StoreIdentity};
use hbbp_workloads::{phased, phased_client, Scale};
use std::path::Path;

const PERIODS: SamplingPeriods = SamplingPeriods {
    ebs: 1009,
    lbr: 211,
};

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

/// Record `phased` to a file, fold it offline, and store that fold as
/// the baseline epoch under the workload's identity.
fn build_baseline(tmp: &Path) -> (std::path::PathBuf, std::path::PathBuf) {
    let recording = tmp.join("baseline.bin");
    RecordOptions::parse(&args(&[
        "--workload",
        "phased",
        "--out",
        recording.to_str().unwrap(),
    ]))
    .unwrap()
    .run()
    .unwrap();

    let w = phased(Scale::Tiny);
    let analyzer = analyzer_for(&w).unwrap();
    let bytes = std::fs::read(&recording).unwrap();
    let data = hbbp_perf::codec::read(&bytes).unwrap();
    let batch = analyzer.analyze_fused(&data, PERIODS, &HybridRule::paper_default());

    let store_path = tmp.join("baseline.hbbp");
    let mut store = ProfileStore::open_with_identity(
        &store_path,
        StoreIdentity::of_workload(&w, analyzer.map()),
    )
    .unwrap();
    store.append_counts(0, 1, 1, batch.hbbp.bbec).unwrap();
    (recording, store_path)
}

#[test]
fn replayed_baseline_is_quiet_and_a_shifted_mix_is_flagged() {
    let tmp = std::env::temp_dir().join(format!("hbbp-cli-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let (recording, store_path) = build_baseline(&tmp);

    // Replay: one window spanning the whole recording reproduces the
    // baseline fold, so nothing is flagged.
    let quiet = WatchOptions::parse(&args(&[
        recording.to_str().unwrap(),
        "--baseline",
        store_path.to_str().unwrap(),
        "--window",
        "samples:1000000",
    ]))
    .unwrap()
    .run()
    .unwrap();
    assert!(
        !quiet.contains("DRIFT"),
        "replayed baseline must stay quiet:\n{quiet}"
    );
    assert!(quiet.contains("0 flagged"), "{quiet}");
    assert!(quiet.contains("against epoch 0"), "{quiet}");

    // Injected divergence: a fleet client runs the *same* phased binary
    // (identical identity) with a different phase mixture; its windows
    // drift from the stored epoch and must be flagged.
    let shifted = phased_client(Scale::Tiny, 0);
    let session = PerfSession::hbbp(Cpu::with_seed(7), PERIODS.ebs, PERIODS.lbr);
    let rec = session
        .record(shifted.program(), shifted.layout(), shifted.oracle())
        .unwrap();
    let drift_path = tmp.join("shifted.bin");
    std::fs::write(&drift_path, hbbp_perf::codec::write(&rec.data)).unwrap();

    let noisy = WatchOptions::parse(&args(&[
        drift_path.to_str().unwrap(),
        "--baseline",
        store_path.to_str().unwrap(),
        "--window",
        "samples:32",
    ]))
    .unwrap()
    .run()
    .unwrap();
    assert!(
        noisy.contains("DRIFT window"),
        "shifted mix must be flagged:\n{noisy}"
    );
    assert!(!noisy.contains("0 flagged"), "{noisy}");

    // Guardrails: an epoch the store does not hold, and a store recorded
    // from a different workload, are both refused with pinned messages.
    let err = WatchOptions::parse(&args(&[
        recording.to_str().unwrap(),
        "--baseline",
        store_path.to_str().unwrap(),
        "--epoch",
        "3",
    ]))
    .unwrap()
    .run()
    .unwrap_err();
    assert!(err.to_string().contains("has no epoch 3"), "{err}");

    let err = WatchOptions::parse(&args(&[
        recording.to_str().unwrap(),
        "--baseline",
        store_path.to_str().unwrap(),
        "--workload",
        "test40",
    ]))
    .unwrap()
    .run()
    .unwrap_err();
    assert!(
        err.to_string().contains("was not recorded from workload"),
        "{err}"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}

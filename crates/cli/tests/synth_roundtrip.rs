//! The `hbbp synth` differential harness: profile → spec → workload →
//! profile, closed through the same pipeline twice.
//!
//! * **Differential round trip** — synthesize from a stored profile,
//!   replay the synthesized recording through a live daemon, and pin
//!   the daemon's aggregate **bit-identical** (`f64` bits) to the
//!   offline `analyze_fused` of the same recording AND within the
//!   calibration tolerance of the original target.
//! * **Reproducibility** — the same spec + seed replays to a
//!   byte-identical recording and bit-identical analysis; the spec JSON
//!   round-trips losslessly, so a shipped spec needs no re-solving.
//! * **Convergence fixtures** — an INT-heavy target, an SSE-heavy
//!   target, and a windowed slice of a phase-varying timeline all
//!   calibrate to within the pinned tolerance inside the iteration cap.
//! * **Golden report** — the rendered `hbbp synth` report is pinned
//!   byte-for-byte (re-bless with
//!   `BLESS=1 cargo test -p hbbp-cli --test synth_roundtrip`).

use hbbp_cli::record::RecordOptions;
use hbbp_cli::serve::ServeOptions;
use hbbp_cli::synth::{analyze_spec_bytes, record_spec, SynthOptions};
use hbbp_core::Analyzer;
use hbbp_program::{ImageView, MnemonicMix};
use hbbp_store::{DaemonConfig, StoreClient, StoreIdentity};
use hbbp_workloads::{SynthSpec, Workload};
use std::path::{Path, PathBuf};

/// The pinned calibration tolerance every fixture must reach.
const TOLERANCE: f64 = 0.02;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let tmp = std::env::temp_dir().join(format!("hbbp-synth-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    tmp
}

fn assert_mix_bit_identical(got: &MnemonicMix, want: &MnemonicMix, what: &str) {
    for m in got.union_mnemonics(want) {
        assert_eq!(
            got.get(m).to_bits(),
            want.get(m).to_bits(),
            "{what}: {m} differs ({} vs {})",
            got.get(m),
            want.get(m)
        );
    }
}

/// Record `workload` at `scale` to `path` with the default seeds, so
/// the synth defaults line up with the recording's.
fn record_fixture(workload: &str, scale: &str, path: &Path) {
    RecordOptions::parse(&args(&[
        "--workload",
        workload,
        "--scale",
        scale,
        "--out",
        path.to_str().unwrap(),
    ]))
    .unwrap()
    .run()
    .unwrap();
}

/// Build a single-partition profile store under `dir` the production
/// way: serve `phased` (windowed timeline on), stream one recording in
/// over the wire, shut down. Returns the partition path.
fn build_store_fixture(dir: &Path) -> PathBuf {
    let store_dir = dir.join("store");
    let serve = ServeOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--shards",
        "1",
        "--window",
        "samples:256",
        "--dir",
        store_dir.to_str().unwrap(),
    ]))
    .unwrap();
    let (handle, _banner) = serve.spawn().unwrap();
    let addr = handle.addr().to_string();
    RecordOptions::parse(&args(&[
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--daemon",
        &addr,
        "--source",
        "1",
    ]))
    .unwrap()
    .run()
    .unwrap();
    handle.shutdown().unwrap();
    store_dir.join("part-0.hbbp")
}

/// Spawn a daemon whose analysis engine is built from the *synthesized*
/// workload, exactly as a fleet deployment of the generated binary
/// would be served.
fn spawn_synth_daemon(w: &Workload, dir: &Path) -> hbbp_store::DaemonHandle {
    let analyzer = Analyzer::from_images(&w.images(ImageView::Disk), w.layout().symbols())
        .expect("synthesized workload discovers statically");
    let identity = StoreIdentity::of_workload(w, analyzer.map());
    hbbp_store::spawn(DaemonConfig {
        analyzer,
        identity,
        periods: hbbp_cli::common::WorkloadOptions::default().periods,
        rule: hbbp_core::HybridRule::paper_default(),
        window: None,
        shards: 1,
        dir: dir.to_path_buf(),
        workers: 0,
        queue_depth: 0,
        metrics: false,
    })
    .expect("synth daemon spawns")
}

/// Differential round trip (the headline pin): a store-sourced target is
/// calibrated, the winning spec is recorded once, and that one recording
/// is analyzed twice — offline (`analyze_fused`) and through a live
/// daemon (`stream` → `query mix`). The two must agree to the bit, and
/// both must sit within the calibration tolerance of the target.
#[test]
fn store_profile_roundtrips_through_a_live_daemon() {
    let tmp = tmp_dir("roundtrip");
    let part = build_store_fixture(&tmp);

    let opts = SynthOptions::parse(&args(&[
        "--store",
        part.to_str().unwrap(),
        "--workload",
        "phased",
        "--scale",
        "tiny",
    ]))
    .unwrap();
    let (target, desc, cal) = opts.execute().unwrap();
    assert!(desc.contains("aggregate"), "{desc}");
    assert!(
        cal.converged && cal.distance <= TOLERANCE,
        "store-sourced calibration must converge: distance {} after {} iters",
        cal.distance,
        cal.iterations
    );

    // One recording of the calibrated spec, two analyses.
    let (w, bytes) = record_spec(&cal.spec, opts.workload.periods, opts.cpu_seed).unwrap();
    let offline = analyze_spec_bytes(&w, &bytes, opts.workload.periods, &opts.rule).unwrap();

    // The offline measurement reproduces the calibration's best distance
    // bit for bit — the loop's measurements were not noise.
    assert_eq!(
        target.tv_distance(&offline).to_bits(),
        cal.distance.to_bits(),
        "replayed measurement drifted from the calibration record"
    );

    let handle = spawn_synth_daemon(&w, &tmp.join("synth-store"));
    let client = StoreClient::new(handle.addr());
    let reply = client.stream_bytes(7, &bytes).unwrap();
    assert!(reply.records > 0 && reply.samples > 0);
    let daemon_mix = client.query_mix().unwrap();
    handle.shutdown().unwrap();

    assert_mix_bit_identical(
        &daemon_mix,
        &offline,
        "daemon aggregate vs offline analyze_fused",
    );
    assert!(
        target.tv_distance(&daemon_mix) <= TOLERANCE,
        "daemon-measured synthetic mix must stay within tolerance of the target"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Reproducibility pin: the calibrated spec is a complete, portable
/// description. Same spec + seed ⇒ byte-identical recording and
/// bit-identical analysis; the JSON form round-trips losslessly and
/// replays to the same measurement without re-solving.
#[test]
fn calibrated_spec_replays_byte_identically() {
    let tmp = tmp_dir("replay");
    let recording = tmp.join("int.bin");
    record_fixture("test40", "tiny", &recording);

    let opts = SynthOptions::parse(&args(&[
        "--recording",
        recording.to_str().unwrap(),
        "--workload",
        "test40",
        "--scale",
        "tiny",
    ]))
    .unwrap();
    let (target, _desc, cal) = opts.execute().unwrap();

    let (wa, ba) = record_spec(&cal.spec, opts.workload.periods, opts.cpu_seed).unwrap();
    let (wb, bb) = record_spec(&cal.spec, opts.workload.periods, opts.cpu_seed).unwrap();
    assert_eq!(ba, bb, "same spec + seed must record byte-identically");
    let ma = analyze_spec_bytes(&wa, &ba, opts.workload.periods, &opts.rule).unwrap();
    let mb = analyze_spec_bytes(&wb, &bb, opts.workload.periods, &opts.rule).unwrap();
    assert_mix_bit_identical(&ma, &mb, "re-analyzed replays");

    // JSON round trip is lossless, and the decoded spec measures the
    // same distance bit for bit — no re-solving required.
    let json = cal.spec.to_json();
    let decoded = SynthSpec::from_json(&json).unwrap();
    assert_eq!(decoded, cal.spec);
    assert_eq!(decoded.to_json(), json);
    let (wd, bd) = record_spec(&decoded, opts.workload.periods, opts.cpu_seed).unwrap();
    assert_eq!(bd, ba, "decoded spec must replay the same bytes");
    let md = analyze_spec_bytes(&wd, &bd, opts.workload.periods, &opts.rule).unwrap();
    assert_eq!(
        target.tv_distance(&md).to_bits(),
        cal.distance.to_bits(),
        "decoded spec must reproduce the calibrated distance"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Convergence fixtures: three qualitatively different targets — an
/// INT-heavy mix, an SSE-heavy mix, and one window of a phase-varying
/// timeline — all calibrate to TV distance <= 0.02 within the default
/// iteration cap.
#[test]
fn fixture_targets_converge_within_tolerance() {
    let tmp = tmp_dir("fixtures");
    let int_rec = tmp.join("int.bin");
    let sse_rec = tmp.join("sse.bin");
    let phased_rec = tmp.join("phased.bin");
    record_fixture("test40", "tiny", &int_rec);
    record_fixture("fitter-sse", "tiny", &sse_rec);
    // The phase slice needs a timeline with several windows: small scale.
    record_fixture("phased", "small", &phased_rec);

    let fixtures: [(&str, Vec<String>); 3] = [
        (
            "int-heavy (test40)",
            args(&[
                "--recording",
                int_rec.to_str().unwrap(),
                "--workload",
                "test40",
                "--scale",
                "tiny",
            ]),
        ),
        (
            "sse-heavy (fitter-sse)",
            args(&[
                "--recording",
                sse_rec.to_str().unwrap(),
                "--workload",
                "fitter-sse",
                "--scale",
                "tiny",
            ]),
        ),
        (
            "windowed phase slice (phased, window 1)",
            args(&[
                "--recording",
                phased_rec.to_str().unwrap(),
                "--workload",
                "phased",
                "--scale",
                "small",
                "--window",
                "1",
                "--window-size",
                "samples:256",
            ]),
        ),
    ];

    for (label, argv) in fixtures {
        let opts = SynthOptions::parse(&argv).unwrap();
        let (target, desc, cal) = opts.execute().unwrap();
        assert!(
            cal.converged,
            "{label}: did not converge (distance {} after {} iters, target {desc})",
            cal.distance, cal.iterations
        );
        assert!(cal.distance <= TOLERANCE, "{label}: {}", cal.distance);
        assert!(cal.iterations <= opts.max_iters);
        // The measured mix the calibrator settled on really is the
        // spec's measurement, not a stale intermediate.
        assert_eq!(
            target.tv_distance(&cal.measured).to_bits(),
            cal.distance.to_bits(),
            "{label}"
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

/// The rendered `hbbp synth` report, golden-pinned: target provenance,
/// per-iteration solver table, convergence line and spec summary.
#[test]
fn synth_report_is_golden_pinned() {
    let tmp = tmp_dir("golden");
    let part = build_store_fixture(&tmp);
    let spec_out = tmp.join("spec.json");

    let report = SynthOptions::parse(&args(&[
        "--store",
        part.to_str().unwrap(),
        "--workload",
        "phased",
        "--scale",
        "tiny",
        "--out",
        spec_out.to_str().unwrap(),
    ]))
    .unwrap()
    .run()
    .unwrap();
    let normalized = report.replace(tmp.to_str().unwrap(), "<TMP>");

    // The emitted spec file itself round-trips.
    let text = std::fs::read_to_string(&spec_out).unwrap();
    let spec = SynthSpec::from_json(&text).unwrap();
    assert_eq!(spec.to_json(), text);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/synth_report.txt");
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &normalized).unwrap();
    } else {
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate with \
                 BLESS=1 cargo test -p hbbp-cli --test synth_roundtrip",
                path.display()
            )
        });
        assert_eq!(
            expected, normalized,
            "synth report drifted; re-bless with \
             BLESS=1 cargo test -p hbbp-cli --test synth_roundtrip if intentional"
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

//! Pins `docs/DAEMON.md` to the `serve` surface it documents: every
//! flag named in its tuning table must exist in `hbbp serve --help`,
//! and the anchors other docs link to must keep existing.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn read_doc(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../docs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing docs/{name} ({e})"))
}

/// All `--flag` tokens appearing in a string.
fn flags_in(text: &str) -> BTreeSet<String> {
    let mut flags = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("--") {
        let start = i + at;
        let end = bytes[start + 2..]
            .iter()
            .position(|b| !(b.is_ascii_alphanumeric() || *b == b'-'))
            .map_or(text.len(), |n| start + 2 + n);
        // A flag starts with a letter; table rules like `|---|` do not.
        if end > start + 2 && bytes[start + 2].is_ascii_alphabetic() {
            flags.insert(text[start..end].to_owned());
        }
        i = end.max(start + 2);
    }
    flags
}

#[test]
fn daemon_md_tuning_flags_exist_in_serve_usage() {
    let doc = read_doc("DAEMON.md");
    let tuning = doc
        .split("## Tuning")
        .nth(1)
        .expect("docs/DAEMON.md lost its Tuning section")
        .split("\n## ")
        .next()
        .unwrap();
    let documented = flags_in(tuning);
    assert!(
        documented.len() >= 4,
        "tuning table looks empty: {documented:?}"
    );
    let usage = hbbp_cli::serve::usage("hbbp serve");
    for flag in &documented {
        assert!(
            usage.contains(flag.as_str()),
            "docs/DAEMON.md tunes {flag}, but `hbbp serve --help` does not offer it"
        );
    }
}

#[test]
fn serve_pool_flags_are_documented_in_daemon_md() {
    // The reverse direction for the daemon-specific knobs: the flags the
    // concurrency model exposes must be in the doc that explains them.
    let doc = read_doc("DAEMON.md");
    for flag in ["--shards", "--workers", "--queue-depth"] {
        assert!(doc.contains(flag), "docs/DAEMON.md must document {flag}");
    }
}

#[test]
fn cross_doc_anchors_keep_existing() {
    // PROTOCOL.md links DAEMON.md#shutdown-ordering; DAEMON.md links the
    // STREAM section of PROTOCOL.md. Renaming either heading silently
    // breaks the link, so pin both.
    assert!(
        read_doc("DAEMON.md").contains("\n## Shutdown ordering"),
        "docs/DAEMON.md lost the heading PROTOCOL.md links to"
    );
    assert!(
        read_doc("PROTOCOL.md").contains("\n## STREAM"),
        "docs/PROTOCOL.md lost the heading DAEMON.md links to"
    );
}

//! Golden-pins the three renderings of `hbbp query metrics` (text,
//! JSON, Prometheus) over one synthetic snapshot, so the exposition
//! formats cannot drift silently — a scraper parses the Prometheus
//! output and scripts parse the JSON. Re-bless with
//! `BLESS=1 cargo test -p hbbp-cli --test metrics_render`.

use hbbp_cli::render::{render_metrics, MetricsFormat};
use hbbp_obs::{Counter, Gauge, Histogram, Metrics, Snapshot};
use std::path::PathBuf;

/// A deterministic snapshot exercising every sample kind: counters,
/// a global gauge, a per-shard gauge, and a histogram with spread-out
/// observations (distinct p50/p99 buckets).
fn sample_snapshot() -> Snapshot {
    let m = Metrics::new(2);
    m.add(Counter::AcceptorAccepts, 3);
    m.add(Counter::DecoderRecords, 12_345);
    m.add(Counter::WriterCountsAppended, 3);
    m.gauge_inc(Gauge::WorkerConnections);
    m.gauge_inc(Gauge::WorkerConnections);
    m.gauge_dec(Gauge::WorkerConnections);
    m.gauge_shard_inc(Gauge::WriterQueueDepth, 1);
    for v in [0, 3, 40, 500, 6_000] {
        m.observe(Histogram::WriterCommitUs, v);
    }
    m.snapshot()
}

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate with \
             BLESS=1 cargo test -p hbbp-cli --test metrics_render",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted; re-bless with BLESS=1 cargo test -p hbbp-cli --test metrics_render \
         if intentional"
    );
}

#[test]
fn text_rendering_is_pinned() {
    assert_golden(
        "metrics_text.txt",
        &render_metrics(&sample_snapshot(), MetricsFormat::Text),
    );
}

#[test]
fn json_rendering_is_pinned() {
    assert_golden(
        "metrics_json.txt",
        &render_metrics(&sample_snapshot(), MetricsFormat::Json),
    );
}

#[test]
fn prometheus_rendering_is_pinned() {
    assert_golden(
        "metrics_prometheus.txt",
        &render_metrics(&sample_snapshot(), MetricsFormat::Prometheus),
    );
}

#[test]
fn empty_snapshot_renders_a_disabled_notice() {
    let text = render_metrics(&Snapshot::default(), MetricsFormat::Text);
    assert_eq!(text, "no metrics: the daemon runs without a registry\n");
    let json = render_metrics(&Snapshot::default(), MetricsFormat::Json);
    assert_eq!(
        json,
        "{\"counters\": [], \"gauges\": [], \"histograms\": []}\n"
    );
    assert!(render_metrics(&Snapshot::default(), MetricsFormat::Prometheus).is_empty());
}

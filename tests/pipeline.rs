//! Cross-crate integration tests: the full HBBP pipeline from workload
//! generation through collection, analysis and error metrics.

use hbbp::prelude::*;
use hbbp::workloads::{generate, GenSpec};

fn eval(workload: &Workload, seed: u64, rule: HybridRule) -> (ProfileResult, f64, f64, f64) {
    let truth = Instrumenter::new().run(workload.program(), workload.layout(), workload.oracle());
    let result = HbbpProfiler::new(Cpu::with_seed(seed))
        .with_rule(rule)
        .profile(workload)
        .expect("profile");
    let hbbp = MixComparison::compare(&truth.mix, &result.hbbp_mix_for_ring(Ring::User))
        .avg_weighted_error();
    let lbr = MixComparison::compare(
        &truth.mix,
        &result
            .analyzer
            .mix_for_ring(&result.analysis.lbr.bbec, Ring::User),
    )
    .avg_weighted_error();
    let ebs = MixComparison::compare(
        &truth.mix,
        &result
            .analyzer
            .mix_for_ring(&result.analysis.ebs.bbec, Ring::User),
    )
    .avg_weighted_error();
    (result, hbbp, lbr, ebs)
}

#[test]
fn hbbp_accuracy_envelope() {
    // On a generic workload HBBP must deliver a small average weighted
    // error at a small overhead — the paper's headline tradeoff.
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let (result, hbbp, lbr, ebs) = eval(&w, 0xAA, HybridRule::paper_default());
    assert!(hbbp < 0.06, "HBBP error {hbbp:.4} too large");
    assert!(
        result.overhead_fraction() < 0.03,
        "overhead {:.4}",
        result.overhead_fraction()
    );
    // HBBP must not be dramatically worse than the best single method.
    assert!(
        hbbp <= 1.8 * lbr.min(ebs) + 0.005,
        "hbbp {hbbp} lbr {lbr} ebs {ebs}"
    );
}

#[test]
fn hybrid_dodges_both_failure_modes() {
    use hbbp::workloads::{fitter, FitterVariant};
    // SSE: long sticky-biased blocks → LBR much worse than HBBP.
    let sse = fitter(FitterVariant::Sse, Scale::Tiny);
    let (_, hbbp, lbr, _) = eval(&sse, 0xBB, HybridRule::paper_default());
    assert!(
        lbr > 1.5 * hbbp,
        "SSE variant: LBR {lbr:.4} should be much worse than HBBP {hbbp:.4}"
    );
    // AVX: short blocks with trailing divides → EBS much worse than HBBP.
    let avx = fitter(FitterVariant::Avx, Scale::Tiny);
    let (_, hbbp, _, ebs) = eval(&avx, 0xBB, HybridRule::paper_default());
    assert!(
        ebs > 1.5 * hbbp,
        "AVX variant: EBS {ebs:.4} should be much worse than HBBP {hbbp:.4}"
    );
}

#[test]
fn ablation_rules_bracket_the_hybrid() {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let (_, hybrid, _, _) = eval(&w, 0xCC, HybridRule::paper_default());
    let (_, always_ebs, _, _) = eval(&w, 0xCC, HybridRule::AlwaysEbs);
    let (_, always_lbr, _, _) = eval(&w, 0xCC, HybridRule::AlwaysLbr);
    // The hybrid should never lose badly to both degenerate rules at once.
    assert!(
        hybrid <= always_ebs.max(always_lbr) + 1e-9,
        "hybrid {hybrid} vs ebs {always_ebs} / lbr {always_lbr}"
    );
}

#[test]
fn profiles_are_deterministic_per_seed() {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let a = HbbpProfiler::new(Cpu::with_seed(5)).profile(&w).unwrap();
    let b = HbbpProfiler::new(Cpu::with_seed(5)).profile(&w).unwrap();
    assert_eq!(a.recording.data, b.recording.data);
    let c = HbbpProfiler::new(Cpu::with_seed(6)).profile(&w).unwrap();
    assert_ne!(a.recording.data, c.recording.data);
}

#[test]
fn perf_data_roundtrips_through_binary_codec() {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let result = HbbpProfiler::new(Cpu::with_seed(9)).profile(&w).unwrap();
    let bytes = hbbp::perf::codec::write(&result.recording.data);
    let back = hbbp::perf::codec::read(&bytes).expect("read back");
    assert_eq!(back, result.recording.data);
    // And the decoded stream supports the same analysis.
    let re = result
        .analyzer
        .analyze(&back, result.periods, &HybridRule::paper_default());
    assert_eq!(re.hbbp.bbec.total(), result.analysis.hbbp.bbec.total());
}

#[test]
fn instrumentation_fault_caught_by_pmu_cross_check() {
    use hbbp::instrument::MiscountFault;
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let faulty = Instrumenter::new()
        .with_fault(MiscountFault {
            mnemonic: Mnemonic::Mov,
            factor: 0.8,
        })
        .run(w.program(), w.layout(), w.oracle());
    let clean = Cpu::with_seed(1)
        .run_clean(w.program(), w.layout(), w.oracle())
        .unwrap();
    let check = cross_check(&faulty, &clean.counts, 0);
    assert!(!check.agrees(0.005), "{check}");
}

#[test]
fn total_instruction_estimates_track_truth() {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let result = HbbpProfiler::new(Cpu::with_seed(11)).profile(&w).unwrap();
    let estimated = result
        .analyzer
        .total_instructions(&result.analysis.hbbp.bbec);
    let actual = result.clean.instructions as f64;
    let err = (estimated - actual).abs() / actual;
    assert!(err < 0.1, "total estimate off by {:.2}%", err * 100.0);
}

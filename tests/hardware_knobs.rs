//! Integration tests over the hardware knobs the paper's evaluation turns:
//! LBR depth, the entry[0] erratum, system stabilization and throttling.

use hbbp::prelude::*;
use hbbp::sim::{LbrQuirk, PmuGeneration};
use hbbp::workloads::{fitter, generate, FitterVariant, GenSpec};

#[test]
fn deeper_lbr_stacks_carry_more_streams() {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let mut streams_per_stack = Vec::new();
    for depth in [8usize, 16, 32] {
        let mut profiler = HbbpProfiler::new(Cpu::with_seed(21));
        profiler.pmu_template.lbr.stack_depth = depth;
        let r = profiler.profile(&w).unwrap();
        streams_per_stack.push(r.analysis.lbr.streams as f64 / r.analysis.lbr.stacks.max(1) as f64);
    }
    assert!(streams_per_stack[0] < streams_per_stack[1]);
    assert!(streams_per_stack[1] < streams_per_stack[2]);
    // N entries yield N-1 streams.
    assert!((streams_per_stack[1] - 15.0).abs() < 0.5);
}

#[test]
fn quirk_free_hardware_fixes_lbr_but_not_hbbp_much() {
    // The paper's footnote: the erratum was fixed in later designs.
    let w = fitter(FitterVariant::Sse, Scale::Tiny);
    let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
    let run = |quirk: LbrQuirk| {
        let mut profiler = HbbpProfiler::new(Cpu::with_seed(31));
        profiler.pmu_template.lbr.quirk = quirk;
        let r = profiler.profile(&w).unwrap();
        let lbr = MixComparison::compare(
            &truth.mix,
            &r.analyzer.mix_for_ring(&r.analysis.lbr.bbec, Ring::User),
        )
        .avg_weighted_error();
        let hbbp = MixComparison::compare(&truth.mix, &r.hbbp_mix_for_ring(Ring::User))
            .avg_weighted_error();
        (lbr, hbbp)
    };
    let (lbr_bad, hbbp_with) = run(LbrQuirk::default());
    let (lbr_good, hbbp_without) = run(LbrQuirk::disabled());
    assert!(
        lbr_bad > 2.0 * lbr_good,
        "erratum must hurt LBR: {lbr_bad:.4} vs {lbr_good:.4}"
    );
    // HBBP routed those blocks to EBS, so it barely notices either way.
    assert!(
        hbbp_with < 0.6 * lbr_bad,
        "HBBP {hbbp_with:.4} must dodge LBR {lbr_bad:.4}"
    );
    assert!(hbbp_without <= lbr_bad);
}

#[test]
fn unstabilized_system_perturbs_timings() {
    // §VII.A: the paper disables turbo for benchmarking. With turbo on,
    // wall-clock measurements wander run to run; instruction counts don't.
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let mut cpu = Cpu::with_seed(41);
    cpu.system.turbo = true;
    let a = cpu.run_clean(w.program(), w.layout(), w.oracle()).unwrap();
    assert!(a.freq_ghz > 2.4, "turbo must raise the clock");
    cpu.seed = 42;
    let b = cpu.run_clean(w.program(), w.layout(), w.oracle()).unwrap();
    assert_ne!(a.freq_ghz, b.freq_ghz, "turbo wanders across runs");
    assert_eq!(a.instructions, b.instructions, "work is unchanged");
}

#[test]
fn throttled_collection_loses_samples_and_reports_it() {
    use hbbp::perf::PerfSession;
    let w = generate(&GenSpec::default(), Scale::Tiny);
    let mut session = PerfSession::hbbp(Cpu::with_seed(51), 101, 31);
    session.pmu.max_sample_rate = Some(2_000); // absurdly low limit
    let rec = session.record(w.program(), w.layout(), w.oracle()).unwrap();
    assert!(rec.run.throttled > 0);
    // The loss is visible in the data stream as a LOST record.
    assert_eq!(rec.data.lost(), rec.run.throttled);
}

#[test]
fn older_generations_count_what_newer_ones_cannot() {
    use hbbp::sim::{CounterConfig, EventKind, EventSpec, PmuConfig};
    let w = generate(&GenSpec::default(), Scale::Tiny);
    // Ivy Bridge (the paper's machine) can still count SSE FP directly.
    let pmu = PmuConfig {
        counters: vec![CounterConfig::new(
            EventSpec::plain(EventKind::FpCompOpsSse),
            1_000_000,
        )],
        generation: PmuGeneration::IvyBridge,
        ..PmuConfig::default()
    };
    Cpu::with_seed(61)
        .run(w.program(), w.layout(), w.oracle(), &pmu)
        .expect("ivy bridge supports the event");
    // Haswell cannot — the Table 2 decline that motivates HBBP.
    let pmu = PmuConfig {
        counters: vec![CounterConfig::new(
            EventSpec::plain(EventKind::FpCompOpsSse),
            1_000_000,
        )],
        generation: PmuGeneration::Haswell,
        ..PmuConfig::default()
    };
    assert!(Cpu::with_seed(61)
        .run(w.program(), w.layout(), w.oracle(), &pmu)
        .is_err());
}

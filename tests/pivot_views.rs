//! Integration tests of the analyzer's pivot-table views — the paper's
//! §V.B analysis surface ("top functions, top mnemonics, or instruction
//! family breakdowns, are produced in a few clicks").

use hbbp::prelude::*;
use hbbp::workloads::{clforward, generate, ClVariant, GenSpec};

fn profiled() -> ProfileResult {
    let w = generate(&GenSpec::default(), Scale::Tiny);
    HbbpProfiler::new(Cpu::with_seed(77)).profile(&w).unwrap()
}

#[test]
fn pivot_totals_are_consistent_across_groupings() {
    let r = profiled();
    let bbec = &r.analysis.hbbp.bbec;
    let by_mnemonic = r.analyzer.pivot(bbec, &[Field::Mnemonic]);
    let by_symbol = r.analyzer.pivot(bbec, &[Field::Symbol]);
    let by_ext = r.analyzer.pivot(bbec, &[Field::Extension]);
    let by_sym_and_cat = r.analyzer.pivot(bbec, &[Field::Symbol, Field::Category]);
    // Every grouping partitions the same weighted instruction population.
    let t = by_mnemonic.total();
    for p in [&by_symbol, &by_ext, &by_sym_and_cat] {
        assert!((p.total() - t).abs() < 1e-6 * t);
    }
    // And matches the mix total.
    assert!((r.hbbp_mix().total() - t).abs() < 1e-6 * t);
}

#[test]
fn pivot_rows_are_sorted_and_csv_exports() {
    let r = profiled();
    let table = r.analyzer.pivot(&r.analysis.hbbp.bbec, &[Field::Mnemonic]);
    let rows = table.rows();
    for w in rows.windows(2) {
        assert!(w[0].count >= w[1].count, "rows must sort descending");
    }
    let csv = table.to_csv();
    assert!(csv.starts_with("mnemonic,count\n"));
    assert_eq!(csv.lines().count(), rows.len() + 1);
}

#[test]
fn taxonomy_pivot_reproduces_table8_buckets() {
    let w = clforward(ClVariant::After, Scale::Tiny);
    let r = HbbpProfiler::new(Cpu::with_seed(78)).profile(&w).unwrap();
    let table = r.analyzer.pivot(
        &r.analysis.hbbp.bbec,
        &[Field::Taxon(Taxonomy::ext_packing())],
    );
    assert!(table.get(&["AVX/PACKED"]) > 0.0);
    assert!(table.get(&["AVX/NONE"]) > 0.0, "vzeroupper bucket");
    assert_eq!(table.get(&["AVX/SCALAR"]), 0.0, "after the fix");
}

#[test]
fn custom_taxonomy_long_latency_view() {
    // The paper's user-defined "long latency instructions" group, on a
    // divide-heavy workload.
    let w = generate(
        &hbbp::workloads::training::training_spec("train-div-heavy"),
        Scale::Tiny,
    );
    let r = HbbpProfiler::new(Cpu::with_seed(80)).profile(&w).unwrap();
    let table = r.analyzer.pivot(
        &r.analysis.hbbp.bbec,
        &[Field::Taxon(Taxonomy::long_latency())],
    );
    let long = table.get(&["long latency"]);
    let rest = table.get(&["-"]);
    assert!(long > 0.0, "div-heavy workload has long-latency ops");
    assert!(rest > long, "long-latency ops are the minority");
}

#[test]
fn ring_field_splits_user_and_kernel() {
    let w = hbbp::workloads::kernel_benchmark(Scale::Tiny);
    let r = HbbpProfiler::new(Cpu::with_seed(79)).profile(&w).unwrap();
    let table = r.analyzer.pivot(&r.analysis.hbbp.bbec, &[Field::Ring]);
    assert!(table.get(&["user"]) > 0.0);
    assert!(table.get(&["kernel"]) > 0.0);
}

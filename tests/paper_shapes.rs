//! Integration tests pinning the *shapes* of the paper's evaluation:
//! slowdown bands, the vectorization case study, and the criteria search.

use hbbp::core::{train_rule, TrainingConfig};
use hbbp::prelude::*;
use hbbp::workloads::{
    clforward, fitter, hydro_post, spec, test40, training_suite, ClVariant, FitterVariant,
};

#[test]
fn instrumentation_slowdowns_span_the_paper_band() {
    // Table 1: ~4x for plain integer code up to ~76x for Hydro-post.
    let plain = spec::workload_for("bzip2", Scale::Tiny);
    let t = Instrumenter::new().with_cost(plain.sde_cost().clone()).run(
        plain.program(),
        plain.layout(),
        plain.oracle(),
    );
    assert!(
        (2.0..8.0).contains(&t.slowdown()),
        "bzip2 {:.1}x",
        t.slowdown()
    );

    let hydro = hydro_post(Scale::Tiny);
    let t = Instrumenter::new().with_cost(hydro.sde_cost().clone()).run(
        hydro.program(),
        hydro.layout(),
        hydro.oracle(),
    );
    assert!(t.slowdown() > 40.0, "hydro {:.1}x", t.slowdown());

    let povray = spec::workload_for("povray", Scale::Tiny);
    let t_povray = Instrumenter::new()
        .with_cost(povray.sde_cost().clone())
        .run(povray.program(), povray.layout(), povray.oracle());
    assert!(
        t_povray.slowdown() > 9.0,
        "povray should be the worst SPEC slowdown: {:.1}x",
        t_povray.slowdown()
    );
}

#[test]
fn hbbp_overhead_stays_in_paper_band() {
    // §VIII: HBBP collection overhead ≈0.5% (SPEC) to 2.3% (Test40).
    for w in [test40(Scale::Tiny), spec::workload_for("milc", Scale::Tiny)] {
        let r = HbbpProfiler::new(Cpu::with_seed(1)).profile(&w).unwrap();
        let ovh = r.overhead_fraction();
        assert!(
            (0.0..0.05).contains(&ovh),
            "{}: overhead {:.2}%",
            w.name(),
            ovh * 100.0
        );
    }
}

#[test]
fn broken_inlining_shows_the_call_explosion() {
    // Table 6 / §VIII.C: CALLs explode, AVX emission stays plausible.
    let broken = fitter(FitterVariant::AvxBroken, Scale::Tiny);
    let fixed = fitter(FitterVariant::AvxFix, Scale::Tiny);
    let tb = Instrumenter::new().run(broken.program(), broken.layout(), broken.oracle());
    let tf = Instrumenter::new().run(fixed.program(), fixed.layout(), fixed.oracle());
    let calls_ratio = tb.mix.get(Mnemonic::CallNear) / tf.mix.get(Mnemonic::CallNear);
    assert!(calls_ratio > 30.0, "calls ratio {calls_ratio:.0}x");
    let avx = |m: &MnemonicMix| -> f64 {
        m.iter()
            .filter(|(mn, _)| mn.extension() == hbbp::isa::Extension::Avx)
            .map(|(_, c)| c)
            .sum()
    };
    let avx_ratio = avx(&tb.mix) / avx(&tf.mix);
    assert!(
        (0.5..4.0).contains(&avx_ratio),
        "AVX counts should stay unsuspicious, got {avx_ratio:.1}x"
    );
    // Time per track blows up.
    assert!(tb.native_cycles > 4 * tf.native_cycles);
}

#[test]
fn clforward_vectorization_view() {
    // Table 8: scalar-dominated before, packed-dominated after, fewer
    // total instructions, better runtime.
    let before = clforward(ClVariant::Before, Scale::Tiny);
    let after = clforward(ClVariant::After, Scale::Tiny);
    let tb = Instrumenter::new().run(before.program(), before.layout(), before.oracle());
    let ta = Instrumenter::new().run(after.program(), after.layout(), after.oracle());
    assert!(ta.mix.total() < tb.mix.total());
    assert!(ta.native_cycles < tb.native_cycles);
}

#[test]
fn criteria_search_recovers_a_length_rule() {
    // Figure 1 / §IV.B: on the full Tiny training suite (≈1,100 blocks,
    // matching the paper's training-set size) block length must dominate
    // and the cutoff must land near the paper's 18. A 6-workload subset is
    // too seed-sensitive: the root split wanders outside the paper band.
    let suite = training_suite(Scale::Tiny);
    let outcome = train_rule(&suite, &TrainingConfig::default()).unwrap();
    assert!(outcome.rows > 150, "{} rows", outcome.rows);
    assert_eq!(outcome.importances[0].0, "block_len");
    assert!(outcome.importances[0].1 > 0.4);
    let cutoff = outcome.cutoff.expect("root splits on block_len");
    assert!(
        (10.0..32.0).contains(&cutoff),
        "cutoff {cutoff} far from the paper's 18"
    );
}

#[test]
fn pmu_capability_matrix_shrinks_over_generations() {
    use hbbp::sim::PmuGeneration;
    let counts: Vec<usize> = PmuGeneration::ALL
        .iter()
        .map(|g| g.instruction_specific_count())
        .collect();
    assert!(counts[0] >= counts[1] && counts[1] > counts[2]);
}

//! Golden-file pins for the paper-number experiments.
//!
//! `table1` and `fig2` aggregate the whole SPEC-like suite; they are the
//! outputs most likely to drift silently when the collection/analysis
//! pipeline is refactored. Each test regenerates the experiment at
//! `Scale::Tiny` with the default seed and compares **byte-for-byte**
//! against the committed fixture under `tests/golden/`.
//!
//! When a change intentionally moves the numbers, regenerate the fixtures
//! and review the diff like any other code change:
//!
//! ```sh
//! BLESS=1 cargo test --test golden_experiments
//! git diff tests/golden/
//! ```

use hbbp_bench::exp::{figures, tables, ExpOptions};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compare `actual` to the committed fixture (or rewrite it under
/// `BLESS=1`), with a first-divergence diagnostic on mismatch.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             BLESS=1 cargo test --test golden_experiments",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let diverge = expected
        .lines()
        .zip(actual.lines())
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
    let exp_line = expected.lines().nth(diverge).unwrap_or("<eof>");
    let act_line = actual.lines().nth(diverge).unwrap_or("<eof>");
    panic!(
        "{name} drifted from tests/golden/{name}.txt at line {}:\n  expected: {exp_line}\n  actual:   {act_line}\n\
         If the change is intentional, re-bless with BLESS=1 cargo test --test golden_experiments",
        diverge + 1
    );
}

#[test]
fn table1_matches_golden() {
    assert_golden("table1_tiny", &tables::table1(&ExpOptions::default_tiny()));
}

#[test]
fn fig2_matches_golden() {
    assert_golden("fig2_tiny", &figures::fig2(&ExpOptions::default_tiny()));
}

#[test]
fn mix_timeline_matches_golden() {
    use hbbp_bench::exp::streaming;
    assert_golden(
        "mix_timeline_tiny",
        &streaming::mix_timeline(&ExpOptions::default_tiny()),
    );
}

#[test]
fn fleet_aggregation_matches_golden() {
    use hbbp_bench::exp::fleet;
    assert_golden(
        "fleet_aggregation_tiny",
        &fleet::fleet_aggregation(&ExpOptions::default_tiny()),
    );
}

//! Workspace-level smoke test: the end-to-end HBBP pipeline on a tiny
//! Test40 workload, touching every crate the umbrella re-exports — the
//! cheapest possible "is the whole stack wired together" check.

use hbbp::prelude::*;

#[test]
fn end_to_end_pipeline_on_tiny_test40() {
    let workload = hbbp::workloads::test40(Scale::Tiny);

    let profiler = HbbpProfiler::new(Cpu::with_seed(42));
    let result = profiler.profile(&workload).expect("profile succeeds");

    // A non-empty instruction mix with positive counts.
    let mix = result.hbbp_mix();
    assert!(mix.total() > 0.0, "instruction mix is empty");
    let top = mix.top(5);
    assert!(!top.is_empty(), "no top mnemonics");
    assert!(
        top.iter().all(|(_, count)| *count > 0.0),
        "non-positive top counts: {top:?}"
    );

    // Collection overhead is a fraction strictly inside (0, 1) — sampling
    // costs something, but nothing like instrumentation's 4-76x.
    let overhead = result.overhead_fraction();
    assert!(
        overhead > 0.0 && overhead < 1.0,
        "overhead fraction {overhead} outside (0, 1)"
    );
}

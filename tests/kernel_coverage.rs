//! Integration tests of the kernel-mode coverage story (paper §III.C and
//! §VIII.D): instrumentation blindness, HBBP ring coverage, self-modifying
//! text patching.

use hbbp::prelude::*;
use hbbp::workloads::kernel_benchmark;

#[test]
fn instrumentation_is_blind_to_ring0_hbbp_is_not() {
    let w = kernel_benchmark(Scale::Tiny);
    let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
    assert!(
        truth.kernel_blocks_invisible > 0,
        "kernel code must execute"
    );

    let result = HbbpProfiler::new(Cpu::with_seed(2)).profile(&w).unwrap();
    let kernel_mix = result.hbbp_mix_for_ring(Ring::Kernel);
    assert!(
        kernel_mix.total() > 0.0,
        "HBBP must attribute kernel instructions"
    );
    // The instrumenter's mix has no kernel-module instructions at all.
    let imul_kernel = result.analyzer.mix_where(&result.analysis.hbbp.bbec, |b| {
        b.symbol.as_deref() == Some("hello_k")
    });
    assert!(imul_kernel.get(Mnemonic::Imul) > 0.0);
}

#[test]
fn user_and_kernel_mixes_agree() {
    // Table 7: the same code profiled in both rings gives matching counts.
    let w = kernel_benchmark(Scale::Tiny);
    let result = HbbpProfiler::new(Cpu::with_seed(2)).profile(&w).unwrap();
    let user = result.analyzer.mix_where(&result.analysis.hbbp.bbec, |b| {
        b.symbol.as_deref() == Some("hello_u")
    });
    let kernel = result.analyzer.mix_where(&result.analysis.hbbp.bbec, |b| {
        b.symbol.as_deref() == Some("hello_k")
    });
    let deviation = (user.total() - kernel.total()).abs() / user.total();
    assert!(
        deviation < 0.10,
        "user/kernel totals deviate {:.1}%",
        deviation * 100.0
    );
}

#[test]
fn stale_kernel_text_derails_streams_patching_fixes_them() {
    let w = kernel_benchmark(Scale::Tiny);
    let patched = HbbpProfiler::new(Cpu::with_seed(4)).profile(&w).unwrap();
    let stale = HbbpProfiler::new(Cpu::with_seed(4))
        .without_kernel_patching()
        .profile(&w)
        .unwrap();
    assert_eq!(
        patched.analysis.lbr.derailed_streams, 0,
        "patched text must walk cleanly"
    );
    assert!(
        stale.analysis.lbr.derailed_streams > 0,
        "stale tracepoint JMPs must derail streams"
    );
    // And the stale map splits blocks at phantom jumps.
    assert!(stale.analyzer.map().len() > patched.analyzer.map().len());
}

#[test]
fn pmu_counting_reconciles_rings() {
    // PMU totals = user (instrumentable) + kernel (invisible) instructions.
    let w = kernel_benchmark(Scale::Tiny);
    let truth = Instrumenter::new().run(w.program(), w.layout(), w.oracle());
    let clean = Cpu::with_seed(1)
        .run_clean(w.program(), w.layout(), w.oracle())
        .unwrap();
    let kernel_instrs = clean.instructions - truth.instructions as u64;
    assert!(kernel_instrs > 0);
    let check = cross_check(&truth, &clean.counts, kernel_instrs);
    assert!(check.agrees(1e-9), "{check}");
}
